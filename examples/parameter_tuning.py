"""Explore AttRank's parameter space — the paper's Figure 2 heatmaps.

Sweeps AttRank over the Table-3 grid (alpha in [0, 0.5], beta in [0, 1],
attention windows y in 1..5) on a synthetic PMC stand-in and prints one
correlation heatmap per window, plus the best overall setting and the
NO-ATT / ATT-ONLY reference points the paper quotes.

Run:  python examples/parameter_tuning.py
"""

from __future__ import annotations

from repro import SpearmanRho, generate_dataset, split_by_ratio
from repro.analysis.heatmap import attention_heatmap
from repro.analysis.reporting import format_heatmap, format_kv_block


def main() -> None:
    network = generate_dataset("pmc", size="small", seed=11)
    split = split_by_ratio(network, test_ratio=1.6)
    print(f"corpus: {network}")
    print(f"sweeping the Table-3 grid on {split.current.n_papers} papers...\n")

    sweep = attention_heatmap(split, SpearmanRho(), windows=(1, 2, 3, 4, 5))

    for window in sorted(sweep.values):
        _, _, peak = sweep.best_for_window(window)
        print(
            format_heatmap(
                sweep.values[window],
                sweep.betas,
                sweep.alphas,
                title=f"Spearman rho, y = {window}  (max {peak:.4f})",
            )
        )
        print()

    best = sweep.best_overall()
    print(
        format_kv_block(
            {
                "best alpha": best["alpha"],
                "best beta": best["beta"],
                "best gamma": best["gamma"],
                "best window y": int(best["y"]),
                "best rho": f"{best['value']:.4f}",
                "NO-ATT maximum (beta=0)": f"{sweep.no_att_maximum():.4f}",
                "ATT-ONLY maximum (beta=1)": f"{sweep.att_only_maximum():.4f}",
            },
            title="summary (cf. paper Section 4.2)",
        )
    )
    print(
        "\nthe optimum uses attention (beta > 0) but not attention alone "
        "(beta < 1) — the paper's central parameterisation finding."
    )


if __name__ == "__main__":
    main()
