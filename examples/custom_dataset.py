"""Rank your own citation dataset with AttRank.

Demonstrates the full ingestion path on files you might have on disk:
builds a small corpus programmatically with NetworkBuilder, saves it to
the library's .npz format, reloads it, and ranks it.  The same flow
works with the real-format loaders:

    from repro.io import load_hepth, load_aminer, load_csv_dataset
    network = load_hepth("cit-HepTh.txt", "cit-HepTh-dates.txt")
    network = load_aminer("dblp-citation-network.txt")
    network = load_csv_dataset("papers.csv", "citations.csv")

Run:  python examples/custom_dataset.py
"""

from __future__ import annotations

import os
import tempfile

from repro import AttRank, NetworkBuilder
from repro.analysis.reporting import format_table
from repro.io import load_network, save_network


def build_corpus() -> "NetworkBuilder":
    """A miniature field: two foundational papers, a survey, and a
    recent burst of activity around one method paper."""
    builder = NetworkBuilder()
    builder.add_paper("foundations-1", 1998.0, authors=["ada"], venue="J-A")
    builder.add_paper("foundations-2", 1999.0, authors=["bob"], venue="J-A")
    builder.add_paper(
        "survey", 2003.0,
        references=["foundations-1", "foundations-2"],
        authors=["ada", "bob"], venue="J-B",
    )
    builder.add_paper(
        "method-x", 2008.0,
        references=["survey", "foundations-1"],
        authors=["cyd"], venue="C-1",
    )
    # A burst of recent papers building on method-x.
    for index, year in enumerate(
        [2009.0, 2009.5, 2010.0, 2010.2, 2010.5, 2010.8], start=1
    ):
        builder.add_paper(
            f"followup-{index}", year,
            references=["method-x", "survey"],
            authors=[f"author-{index}"], venue="C-1",
        )
    return builder


def main() -> None:
    network = build_corpus().build()
    print(f"built: {network}")

    # Round-trip through the on-disk format (what you would do once
    # after parsing a large dump).
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, "corpus.npz")
        save_network(network, path)
        network = load_network(path)
        print(f"reloaded from {os.path.basename(path)}")

    method = AttRank(
        alpha=0.2, beta=0.5, gamma=0.3, attention_window=2, decay_rate=-0.4
    )
    scores = method.scores(network)
    ranking = method.rank(network)

    rows = [
        [
            position + 1,
            network.id_of(int(i)),
            f"{network.publication_times[i]:.1f}",
            int(network.in_degree[i]),
            f"{scores[i]:.4f}",
        ]
        for position, i in enumerate(ranking)
    ]
    print()
    print(
        format_table(
            ["rank", "paper", "year", "citations", "AttRank"],
            rows,
            title="AttRank ranking (note: method-x over the old classics)",
        )
    )


if __name__ == "__main__":
    main()
