"""Compare AttRank against the paper's five competitors on one corpus.

Reproduces a single cell of the paper's Figures 3/4 pipeline: every
method is tuned over its published parameter grid (Tables 3 and 4) on a
synthetic DBLP stand-in, then scored by Spearman correlation and
nDCG@50 against the short-term-impact ground truth.

Run:  python examples/method_comparison.py
"""

from __future__ import annotations

from repro import NDCG, SpearmanRho, generate_dataset
from repro.analysis.reporting import format_table
from repro.eval.experiment import methods_available, run_comparison_at_ratio


def main() -> None:
    network = generate_dataset("dblp", size="small", seed=3)
    print(f"corpus: {network}")
    lineup = methods_available(network)
    print(f"methods: {', '.join(lineup)}  (tuned on their paper grids)\n")

    rows = []
    spearman = run_comparison_at_ratio(network, 1.6, SpearmanRho())
    ndcg = run_comparison_at_ratio(network, 1.6, NDCG(50))
    for name in lineup:
        best = spearman[name]
        params = ", ".join(
            f"{k}={v}" for k, v in best.best_params.items()
        )
        rows.append(
            [
                name,
                f"{best.best_score:.4f}",
                f"{ndcg[name].best_score:.4f}",
                params,
            ]
        )
    print(
        format_table(
            ["method", "best rho", "best nDCG@50", "best params (for rho)"],
            rows,
            title="Tuned comparison at test ratio 1.6",
        )
    )

    winner = max(lineup, key=lambda m: spearman[m].best_score)
    print(f"\nbest method by correlation: {winner}")


if __name__ == "__main__":
    main()
