"""Spot papers that are trending *right now* — the paper's motivating use
case (the 1998 bioinformatics researcher and the two BLAST papers).

Builds the two-paper overtaking scenario of Figure 1b, then shows how a
researcher at the crossover year would rank the papers with citation
count (misleading: the old classic wins) versus AttRank (correct: the
rising challenger wins).

Run:  python examples/trending_papers.py
"""

from __future__ import annotations

from repro import AttRank, CitationCount
from repro.analysis.reporting import format_series, format_table
from repro.graph.statistics import yearly_citations
from repro.graph.temporal import snapshot_at
from repro.synth.scenarios import two_paper_overtaking


def main() -> None:
    scenario = two_paper_overtaking(seed=7)
    network = scenario.network
    incumbent, challenger = scenario.incumbent_id, scenario.challenger_id
    print(
        f"scenario: {incumbent} (old classic) vs {challenger} (rising), "
        f"{network.n_papers} papers total"
    )

    # The yearly citation trajectories (Figure 1b).
    years, inc = yearly_citations(
        network, incumbent, first_year=1991, last_year=2001
    )
    _, chal = yearly_citations(
        network, challenger, first_year=1991, last_year=2001
    )
    print()
    print(
        format_series(
            "year",
            [int(y) for y in years],
            {incumbent: inc.tolist(), challenger: chal.tolist()},
            title="yearly citation counts",
            precision=0,
        )
    )
    print(f"\ncrossover year: {scenario.crossover_year}")

    # A researcher in 1998 sees only the network up to 1998.
    view, _ = snapshot_at(network, 1998.9)
    cc = CitationCount()
    ar = AttRank(
        alpha=0.1, beta=0.7, gamma=0.2, attention_window=2, decay_rate=-0.5
    )
    cc_scores = cc.scores(view)
    ar_scores = ar.scores(view)

    def rank_of(scores, paper_id):
        order = list(
            sorted(
                range(view.n_papers), key=lambda i: (-scores[i], i)
            )
        )
        return order.index(view.index_of(paper_id)) + 1

    rows = [
        [
            paper,
            rank_of(cc_scores, paper),
            rank_of(ar_scores, paper),
        ]
        for paper in (incumbent, challenger)
    ]
    print()
    print(
        format_table(
            ["paper", "rank by citation count", "rank by AttRank"],
            rows,
            title="the 1998 researcher's view",
        )
    )
    print(
        "\nAttRank surfaces the trending paper that citation count "
        "buries — the paper's motivating observation."
    )


if __name__ == "__main__":
    main()
