"""Quickstart: rank papers by expected short-term impact with AttRank.

Generates a small synthetic citation corpus (a stand-in for the paper's
hep-th dataset), splits it into a current and a future state, runs
AttRank on the current state, and checks the ranking against the ground
truth short-term impact.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AttRank,
    NDCG,
    generate_dataset,
    spearman_rho,
    split_by_ratio,
)


def main() -> None:
    # 1. A citation network.  Swap this for repro.io.load_hepth(...) /
    #    load_aminer(...) to rank a real corpus.
    network = generate_dataset("hep-th", size="small", seed=7)
    print(f"corpus: {network}")

    # 2. The evaluation split: methods see only the current state; the
    #    future state defines each paper's short-term impact (STI).
    split = split_by_ratio(network, test_ratio=1.6)
    print(
        f"current state: {split.current.n_papers} papers up to "
        f"{split.t_current:.1f}; horizon {split.horizon_years:.1f} years"
    )

    # 3. AttRank (Eq. 4 of the paper): alpha follows references, beta
    #    jumps to recently-popular papers, gamma jumps to recent papers.
    #    The recency decay w is fitted from the data automatically.
    method = AttRank(alpha=0.2, beta=0.5, gamma=0.3, attention_window=2)
    scores = method.scores(split.current)
    print(
        f"solved in {method.last_convergence.iterations} iterations "
        f"(fitted w = {method.fitted_decay_rate_:.3f})"
    )

    # 4. The top of the ranking.
    print("\ntop 10 papers by AttRank score:")
    ranking = method.rank(split.current)
    for position, index in enumerate(ranking[:10], start=1):
        paper = split.current.id_of(int(index))
        year = split.current.publication_times[index]
        print(
            f"  {position:2d}. {paper}  ({year:.0f})  "
            f"score={scores[index]:.5f}  true-STI={split.sti[index]:.0f}"
        )

    # 5. Agreement with the ground truth.
    rho = spearman_rho(scores, split.sti)
    ndcg = NDCG(50)(scores, split.sti)
    print(f"\nSpearman rho vs short-term impact: {rho:.4f}")
    print(f"nDCG@50 vs short-term impact:      {ndcg:.4f}")


if __name__ == "__main__":
    main()
