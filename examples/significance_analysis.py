"""Quantify how solid AttRank's margin is — bootstrap significance.

The paper reports point estimates (e.g. "+0.077 correlation over the
best competitor").  This example shows the library's significance
tooling: percentile-bootstrap confidence intervals per method, and a
paired bootstrap test of AttRank against the strongest baseline, on one
synthetic corpus.

Run:  python examples/significance_analysis.py
"""

from __future__ import annotations

from repro import SpearmanRho, generate_dataset, make_method, split_by_ratio
from repro.analysis.reporting import format_table
from repro.eval.significance import bootstrap_metric, paired_bootstrap_test


def main() -> None:
    network = generate_dataset("aps", size="small", seed=5)
    split = split_by_ratio(network, test_ratio=1.6)
    metric = SpearmanRho()
    print(f"corpus: {network}")
    print(f"current state: {split.current.n_papers} papers\n")

    lineup = {
        "AR": make_method(
            "AR", alpha=0.2, beta=0.5, gamma=0.3, attention_window=3
        ),
        "ATT-ONLY": make_method("ATT-ONLY", attention_window=3),
        "CR": make_method("CR", alpha=0.5, tau_dir=4.0),
        "RAM": make_method("RAM", gamma=0.4),
        "CC": make_method("CC"),
    }
    scores = {
        name: method.scores(split.current) for name, method in lineup.items()
    }

    rows = []
    for name in lineup:
        interval = bootstrap_metric(
            scores[name], split.sti, metric, samples=300, seed=1
        )
        rows.append(
            [
                name,
                f"{interval.point:.4f}",
                f"[{interval.low:.4f}, {interval.high:.4f}]",
            ]
        )
    print(
        format_table(
            ["method", "spearman rho", "95% bootstrap CI"],
            rows,
            title="per-method confidence intervals",
        )
    )

    strongest_baseline = max(
        (n for n in lineup if n != "AR"),
        key=lambda n: metric(scores[n], split.sti),
    )
    outcome = paired_bootstrap_test(
        scores["AR"],
        scores[strongest_baseline],
        split.sti,
        metric,
        samples=300,
        seed=1,
    )
    print(
        f"\npaired bootstrap, AR vs {strongest_baseline}: "
        f"mean diff {outcome.mean_difference:+.4f}, "
        f"P(AR better) = {outcome.p_superior:.2f} "
        f"over {outcome.samples} resamples"
    )


if __name__ == "__main__":
    main()
