"""Substrate ablation: which generator mechanisms make the paper's
results possible (DESIGN.md §4, defending the dataset substitution).

The synthetic corpora replace the paper's real datasets, so the bench
suite's conclusions are only as good as the generator's mechanisms.
This ablation removes them one at a time and shows the paper's effects
react exactly as the theory predicts:

* **no-persistence** — the attention window of the *kernel* is widened
  to the whole corpus lifetime, so "recently cited" degenerates to
  "ever cited".  The short-window attention signal weakens (only the
  generic autocorrelation of preferential attachment remains).
* **weak-aging** — the kernel's age decay is almost removed.  Citation
  lag and age bias disappear; recency-based ranking (NO-ATT) collapses
  and attention loses most of its edge over plain citation count —
  i.e. the very phenomena the paper's method exploits vanish with the
  mechanism that produces them.
"""

from __future__ import annotations

from dataclasses import replace

from benchmarks._report import emit
from repro.analysis.reporting import format_table
from repro.baselines import make_method
from repro.eval.metrics import spearman_rho
from repro.eval.split import split_by_ratio
from repro.synth.models import generate_network
from repro.synth.profiles import DATASET_PROFILES

PROBES = (
    ("ATT-ONLY", {"attention_window": 2}),
    ("CC", {}),
    ("RAM", {"gamma": 0.4}),
    ("NO-ATT", {"alpha": 0.3, "decay_rate": -0.4}),
)


def _evaluate(config, seed=21):
    network = generate_network(config, seed=seed)
    split = split_by_ratio(network, 1.6)
    results = {}
    for label, params in PROBES:
        scores = make_method(label, **params).scores(split.current)
        results[label] = spearman_rho(scores, split.sti)
    return results


def test_ablation_generator(benchmark):
    base = replace(DATASET_PROFILES["dblp"].config, n_papers=2500)
    variants = {
        "full": base,
        "no-persistence": replace(base, attention_window=60.0),
        "weak-aging": replace(
            base, aging_rate=-0.02, maturation_exponent=0.0
        ),
    }

    def compute():
        return {name: _evaluate(cfg) for name, cfg in variants.items()}

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for name in variants:
        row = results[name]
        rows.append(
            [
                name,
                f"{row['ATT-ONLY']:.3f}",
                f"{row['CC']:.3f}",
                f"{row['ATT-ONLY'] - row['CC']:+.3f}",
                f"{row['NO-ATT']:.3f}",
                f"{row['RAM']:.3f}",
            ]
        )
    emit(
        "ablation_generator",
        format_table(
            [
                "generator variant", "ATT-ONLY rho", "CC rho",
                "attention edge", "NO-ATT rho", "RAM rho",
            ],
            rows,
            title=(
                "Substrate ablation: Spearman rho to STI under modified "
                "growth kernels (dblp profile, ratio 1.6)"
            ),
        ),
    )

    full = results["full"]
    weak = results["weak-aging"]
    # Removing aging removes the effects the paper exploits:
    # (a) the attention edge over citation count collapses,
    assert (full["ATT-ONLY"] - full["CC"]) > (
        weak["ATT-ONLY"] - weak["CC"]
    ) + 0.05
    # (b) the time-aware NO-ATT method loses its footing entirely.
    assert weak["NO-ATT"] < full["NO-ATT"] - 0.15
    # The full kernel keeps attention clearly ahead of raw counts.
    assert full["ATT-ONLY"] > full["CC"] + 0.1
