"""Report emission for the benchmark harness.

Benches print the reproduced tables/figure series to the *real* stdout
(bypassing pytest capture, so the rows are visible in a plain
``pytest benchmarks/ --benchmark-only`` run) and append the same text to
``benchmarks/results/<bench>.txt`` for EXPERIMENTS.md bookkeeping.
"""

from __future__ import annotations

import os

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Reports emitted during this pytest session, in emission order; the
#: conftest terminal-summary hook prints them after the run (pytest's
#: fd-level capture would otherwise swallow mid-test prints).
EMITTED: list[tuple[str, str]] = []


def emit(name: str, text: str) -> None:
    """Record ``text`` for the end-of-run summary and persist it."""
    EMITTED.append((name, text))
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{name}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text + "\n")
