"""E4 — Figure 1b: the two-paper overtaking scenario (BLAST 1990 vs 1997).

The paper's motivating example: by 1998 the older paper leads on total
citations, but the newer paper's *yearly* citations overtake it — the
1998 researcher should prefer the newer paper.  The synthetic scenario
reproduces the crossover and checks that AttRank (unlike citation count)
ranks the challenger first at the 1998 snapshot.
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis.reporting import format_series
from repro.baselines.citation_count import CitationCount
from repro.core.attrank import AttRank
from repro.graph.statistics import yearly_citations
from repro.graph.temporal import snapshot_at
from repro.synth.scenarios import two_paper_overtaking


def test_figure1b_overtaking(benchmark):
    scenario = benchmark.pedantic(
        lambda: two_paper_overtaking(seed=7), rounds=1, iterations=1
    )
    network = scenario.network

    incumbent = network.index_of(scenario.incumbent_id)
    challenger = network.index_of(scenario.challenger_id)
    years_i, counts_i = yearly_citations(
        network, incumbent, first_year=1990, last_year=2001
    )
    _, counts_c = yearly_citations(
        network, challenger, first_year=1990, last_year=2001
    )
    emit(
        "figure1b_overtaking",
        format_series(
            "year",
            [int(y) for y in years_i],
            {
                scenario.incumbent_id: counts_i.tolist(),
                scenario.challenger_id: counts_c.tolist(),
            },
            title=(
                "Figure 1b: yearly citations (crossover at "
                f"{scenario.crossover_year})"
            ),
            precision=0,
        ),
    )

    # The crossover exists and happens within a few years of the
    # challenger's publication (1998-2000 for BLAST).
    assert scenario.crossover_year is not None
    assert 1997 < scenario.crossover_year <= 2001

    # The 1998 researcher's view: totals favour the incumbent, AttRank
    # favours the challenger.
    view, _ = snapshot_at(network, 1998.9)
    cc = CitationCount().scores(view)
    ar = AttRank(
        alpha=0.1, beta=0.7, gamma=0.2, attention_window=2, decay_rate=-0.5
    ).scores(view)
    vi, vc = view.index_of(scenario.incumbent_id), view.index_of(
        scenario.challenger_id
    )
    assert cc[vi] > cc[vc]
    assert ar[vc] > ar[vi]
