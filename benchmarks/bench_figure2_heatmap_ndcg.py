"""E7 — Figures 2c/2d and 7: nDCG@50 heatmaps over the alpha-beta grid.

Same sweep as E6 but for nDCG@50.  The paper's observations:

* small attention windows are best for nDCG (y = 1 dominates; larger
  windows re-introduce age bias at the top of the ranking);
* the maximum is achieved at beta > 0.
"""

from __future__ import annotations

from benchmarks._report import emit
from benchmarks.conftest import PAPER
from repro.analysis.heatmap import attention_heatmap
from repro.analysis.reporting import format_heatmap, format_table
from repro.eval.metrics import NDCG
from repro.synth.profiles import DATASET_NAMES


def test_figure2_heatmap_ndcg(default_splits, benchmark):
    def compute():
        return {
            name: attention_heatmap(default_splits[name], NDCG(50))
            for name in DATASET_NAMES
        }

    sweeps = benchmark.pedantic(compute, rounds=1, iterations=1)

    blocks = []
    summary_rows = []
    for name in DATASET_NAMES:
        sweep = sweeps[name]
        best = sweep.best_overall()
        summary_rows.append(
            [
                name,
                f"{PAPER['best_ndcg'][name]:.3f}",
                f"{best['value']:.3f}",
                f"a={best['alpha']} b={best['beta']} "
                f"g={best['gamma']} y={int(best['y'])}",
                f"{PAPER['ndcg_no_att'][name]:.3f}",
                f"{sweep.no_att_maximum():.3f}",
            ]
        )
        for window in sorted(sweep.values):
            _, _, peak = sweep.best_for_window(window)
            blocks.append(
                format_heatmap(
                    sweep.values[window],
                    sweep.betas,
                    sweep.alphas,
                    title=f"[{name}] ndcg@50, y={window} (max {peak:.4f})",
                )
            )
    summary = format_table(
        [
            "dataset", "paper best nDCG", "measured best nDCG",
            "measured best setting", "paper NO-ATT", "measured NO-ATT",
        ],
        summary_rows,
        title="Figures 2c/2d + 7: nDCG@50 heatmaps (summary)",
    )
    emit("figure2_heatmap_ndcg", summary + "\n\n" + "\n\n".join(blocks))

    for name in DATASET_NAMES:
        sweep = sweeps[name]
        best = sweep.best_overall()
        # Attention beats NO-ATT at the top of the ranking, by a margin.
        assert best["value"] > sweep.no_att_maximum() + 0.02, name
        # Small windows win for nDCG (paper: y = 1 except APS's y = 3).
        assert best["y"] <= 3, name
        # The per-window maxima decline as the window grows beyond 2.
        peaks = {
            w: sweep.best_for_window(w)[2] for w in sorted(sweep.values)
        }
        assert peaks[1] >= peaks[5] - 1e-9, name
