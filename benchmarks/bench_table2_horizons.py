"""E2 — Table 2: correspondence of test ratio to time horizon.

The paper's Table 2 translates each test ratio into the implied time
horizon tau (years) per dataset; the relationship is non-linear because
publication volume grows.  Absolute values depend on corpus scale; the
shape checks are monotonicity and the faster-growing corpora having
shorter horizons.
"""

from __future__ import annotations

from benchmarks._report import emit
from benchmarks.conftest import PAPER
from repro.analysis.horizons import horizon_table
from repro.analysis.reporting import format_table
from repro.synth.profiles import DATASET_NAMES


def test_table2_horizons(datasets, benchmark):
    def compute():
        return {
            name: horizon_table(datasets[name]) for name in DATASET_NAMES
        }

    tables = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for name in DATASET_NAMES:
        for row in tables[name]:
            rows.append(
                [
                    name,
                    f"{row.test_ratio:.1f}",
                    PAPER["table2"][name][row.test_ratio],
                    f"{row.horizon_years:.1f}",
                ]
            )
    emit(
        "table2_horizons",
        format_table(
            ["dataset", "test ratio", "paper tau (y)", "measured tau (y)"],
            rows,
            title="Table 2: test ratio -> time horizon",
        ),
    )

    for name in DATASET_NAMES:
        horizons = [r.horizon_years for r in tables[name]]
        assert horizons == sorted(horizons), name
        assert all(h > 0 for h in horizons), name
