"""E3 — Figure 1a: the citation-age distribution of each corpus.

The paper's Figure 1a shows the fraction of citations arriving n years
after the cited paper's publication: a rise to a peak in the first 1-3
years, then an exponential-looking decay, with hep-th peaking noticeably
earlier than APS/PMC/DBLP.
"""

from __future__ import annotations

import numpy as np

from benchmarks._report import emit
from repro.analysis.reporting import format_series
from repro.graph.statistics import citation_age_distribution
from repro.synth.profiles import DATASET_NAMES

MAX_AGE = 10


def test_figure1a_citation_age(datasets, benchmark):
    def compute():
        return {
            name: citation_age_distribution(datasets[name], max_age=MAX_AGE)
            for name in DATASET_NAMES
        }

    distributions = benchmark.pedantic(compute, rounds=1, iterations=1)

    series = {
        name: (100 * distributions[name]).tolist() for name in DATASET_NAMES
    }
    emit(
        "figure1a_citation_age",
        format_series(
            "age (years)",
            list(range(MAX_AGE + 1)),
            series,
            title="Figure 1a: % of citations n years after publication",
            precision=1,
        ),
    )

    # Shape checks.
    peaks = {
        name: int(np.argmax(distributions[name])) for name in DATASET_NAMES
    }
    # hep-th's citations arrive earliest (its peak is not later than any
    # other corpus', and its early mass dominates).
    assert peaks["hep-th"] <= min(peaks[n] for n in DATASET_NAMES)
    early = {
        name: distributions[name][:3].sum() for name in DATASET_NAMES
    }
    assert early["hep-th"] == max(early.values())
    # Every distribution decays after its peak.
    for name in DATASET_NAMES:
        dist = distributions[name]
        assert dist[MAX_AGE] < dist[peaks[name]]
