"""E6 — Figures 2a/2b and 6: correlation heatmaps over the alpha-beta grid.

For each dataset at the default ratio, sweeps AttRank over the Table-3
space and renders one heatmap per attention window, annotated with the
per-window maximum — exactly the content of the paper's Figures 2a/2b
(DBLP, PMC) and Figure 6 (APS, hep-th).  The headline observations:

* the beta = 0 column (NO-ATT) is visibly darker — attention matters;
* the best value is achieved at beta strictly between 0 and 1.
"""

from __future__ import annotations

from benchmarks._report import emit
from benchmarks.conftest import PAPER
from repro.analysis.heatmap import attention_heatmap
from repro.analysis.reporting import format_heatmap, format_table
from repro.eval.metrics import SpearmanRho
from repro.synth.profiles import DATASET_NAMES


def test_figure2_heatmap_correlation(default_splits, benchmark):
    def compute():
        return {
            name: attention_heatmap(default_splits[name], SpearmanRho())
            for name in DATASET_NAMES
        }

    sweeps = benchmark.pedantic(compute, rounds=1, iterations=1)

    blocks = []
    summary_rows = []
    for name in DATASET_NAMES:
        sweep = sweeps[name]
        best = sweep.best_overall()
        summary_rows.append(
            [
                name,
                f"{PAPER['best_rho'][name]:.3f}",
                f"{best['value']:.3f}",
                f"a={best['alpha']} b={best['beta']} "
                f"g={best['gamma']} y={int(best['y'])}",
                f"{PAPER['rho_no_att'][name]:.3f}",
                f"{sweep.no_att_maximum():.3f}",
            ]
        )
        for window in sorted(sweep.values):
            _, _, peak = sweep.best_for_window(window)
            blocks.append(
                format_heatmap(
                    sweep.values[window],
                    sweep.betas,
                    sweep.alphas,
                    title=f"[{name}] spearman, y={window} (max {peak:.4f})",
                )
            )
    summary = format_table(
        [
            "dataset", "paper best rho", "measured best rho",
            "measured best setting", "paper NO-ATT", "measured NO-ATT",
        ],
        summary_rows,
        title="Figures 2a/2b + 6: correlation heatmaps (summary)",
    )
    emit(
        "figure2_heatmap_correlation",
        summary + "\n\n" + "\n\n".join(blocks),
    )

    # Shape: attention helps on every dataset (best > NO-ATT max).
    for name in DATASET_NAMES:
        sweep = sweeps[name]
        assert sweep.best_overall()["value"] > sweep.no_att_maximum(), name
