"""E13 — ablation: sensitivity to the attention window y (Section 4.2).

The paper's reading of the heatmaps: for *correlation* the best window
tracks each corpus' citation speed (y = 1 for fast-moving hep-th, y = 3-4
for APS/PMC/DBLP), while for *nDCG@50* small windows win everywhere
because long windows re-introduce age bias at the top of the ranking.
This bench isolates that effect: AttRank tuned per window.
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis.heatmap import attention_heatmap
from repro.analysis.reporting import format_series
from repro.eval.metrics import NDCG, SpearmanRho
from repro.synth.profiles import DATASET_NAMES

WINDOWS = (1, 2, 3, 4, 5)


def test_ablation_attention_window(default_splits, benchmark):
    def compute():
        results = {}
        for name in DATASET_NAMES:
            split = default_splits[name]
            results[name] = {
                "spearman": attention_heatmap(
                    split, SpearmanRho(), windows=WINDOWS
                ),
                "ndcg": attention_heatmap(split, NDCG(50), windows=WINDOWS),
            }
        return results

    sweeps = benchmark.pedantic(compute, rounds=1, iterations=1)

    blocks = []
    for metric_key, metric_label in (("spearman", "Spearman rho"),
                                     ("ndcg", "nDCG@50")):
        series = {
            name: [
                sweeps[name][metric_key].best_for_window(w)[2]
                for w in WINDOWS
            ]
            for name in DATASET_NAMES
        }
        blocks.append(
            format_series(
                "y",
                list(WINDOWS),
                series,
                title=f"Ablation: best {metric_label} per attention window",
            )
        )
    emit("ablation_attention_window", "\n\n".join(blocks))

    for name in DATASET_NAMES:
        ndcg = sweeps[name]["ndcg"]
        peaks = {w: ndcg.best_for_window(w)[2] for w in WINDOWS}
        # nDCG prefers short windows: y = 1 or 2 beats y = 5 everywhere.
        assert max(peaks[1], peaks[2]) >= peaks[5] - 1e-9, name
    # Correlation tolerates (or prefers) longer windows on the
    # slower-moving corpora: the best window for APS/DBLP is >= the best
    # window for hep-th.
    def best_window(name):
        sweep = sweeps[name]["spearman"]
        return max(WINDOWS, key=lambda w: sweep.best_for_window(w)[2])

    assert best_window("aps") >= best_window("hep-th")
