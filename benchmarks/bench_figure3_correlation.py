"""E8 — Figure 3: Spearman correlation to STI vs test ratio, all methods.

Every method is tuned per (dataset, ratio) over its paper grid (Table 4;
Table 3 for AttRank) and the best correlation recorded — the exact
protocol of Section 4.3.1.  Paper findings to reproduce in shape:

* AttRank is the best (or tied-best) method across datasets and ratios;
* NO-ATT is clearly below AttRank;
* ATT-ONLY is strong (often above the existing methods) but never above
  AttRank.
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis.reporting import format_series
from repro.eval.experiment import compare_over_ratios
from repro.eval.metrics import SpearmanRho
from repro.eval.split import DEFAULT_TEST_RATIOS
from repro.synth.profiles import DATASET_NAMES


def test_figure3_correlation(datasets, benchmark):
    def compute():
        return {
            name: compare_over_ratios(
                datasets[name],
                dataset=name,
                metric=SpearmanRho(),
                test_ratios=DEFAULT_TEST_RATIOS,
            )
            for name in DATASET_NAMES
        }

    panels = benchmark.pedantic(compute, rounds=1, iterations=1)

    blocks = []
    for name in DATASET_NAMES:
        panel = panels[name]
        blocks.append(
            format_series(
                "ratio",
                panel.x_values,
                {m: panel.series(m) for m in panel.cells},
                title=f"Figure 3 [{name}]: Spearman rho vs test ratio",
            )
        )
    emit("figure3_correlation", "\n\n".join(blocks))

    for name in DATASET_NAMES:
        panel = panels[name]
        for ratio in panel.x_values:
            position = panel.x_values.index(ratio)
            ar = panel.cells["AR"][position].score
            # AttRank's grid contains both ablations, so it dominates
            # them by construction; against the competitors allow a
            # small noise margin on the synthetic corpora.
            competitors = [
                panel.cells[m][position].score
                for m in panel.cells
                if m not in ("AR", "NO-ATT", "ATT-ONLY")
            ]
            assert ar >= max(competitors) - 0.02, (name, ratio)
            assert ar >= panel.cells["ATT-ONLY"][position].score
            assert ar >= panel.cells["NO-ATT"][position].score
