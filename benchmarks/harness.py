#!/usr/bin/env python
"""Standalone entry point for the machine-readable benchmark harness.

Equivalent to ``repro bench`` for environments that run benchmarks from
the repository checkout without installing the package:

    PYTHONPATH=src python benchmarks/harness.py --scenario figure4 --jobs 4
    PYTHONPATH=src python benchmarks/harness.py --list

All logic lives in :mod:`repro.bench`; this wrapper only parses flags
and forwards to the same code path as the CLI subcommand, so the two
always emit identical ``BENCH_<scenario>.json`` files.
"""

from __future__ import annotations

import argparse
import sys


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="run a repro benchmark scenario and write BENCH_<scenario>.json"
    )
    parser.add_argument("--scenario", help="scenario name (see --list)")
    parser.add_argument(
        "--list", action="store_true", help="list scenarios and exit"
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for parallel scenarios (0 = all cores)",
    )
    parser.add_argument("--size", default="tiny", help="dataset scale")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--warmup", type=int, default=None)
    parser.add_argument(
        "--smoke", action="store_true", help="CI-sized workload cut"
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--output-dir", default=".", help="where to write BENCH_*.json"
    )
    args = parser.parse_args(argv)

    from repro.bench import run_scenario, scenario_help
    from repro.errors import ReproError

    if args.list:
        for name, description in scenario_help().items():
            print(f"{name:12s} {description}")
        return 0
    if not args.scenario:
        parser.error("--scenario is required (or use --list)")
    try:
        result = run_scenario(
            args.scenario,
            jobs=args.jobs,
            size=args.size,
            repeats=args.repeats,
            warmup=args.warmup,
            smoke=args.smoke,
            seed=args.seed,
        )
        path = result.write(args.output_dir)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    payload = result.payload
    if "speedup_vs_serial" in payload:
        print(f"speedup vs serial: {payload['speedup_vs_serial']:.2f}x")
    if "speedup_warm_vs_cold" in payload:
        print(
            f"speedup warm vs cold: {payload['speedup_warm_vs_cold']:.2f}x"
        )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
