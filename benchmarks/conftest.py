"""Shared fixtures for the benchmark harness.

Every bench regenerates one of the paper's tables or figures on the
synthetic stand-in corpora (DESIGN.md §3).  Datasets and splits are
session-scoped: generated once and reused by every bench that needs
them.

Dataset scale is controlled by the ``REPRO_BENCH_SIZE`` environment
variable (``tiny``/``small``/``medium``/``large``; default ``small`` —
3k-8k papers per corpus, the calibrated default the EXPERIMENTS.md
numbers were recorded at).
"""

from __future__ import annotations

import os

import pytest

from repro.eval.split import split_by_ratio
from repro.synth.profiles import DATASET_NAMES, generate_dataset

BENCH_SIZE = os.environ.get("REPRO_BENCH_SIZE", "small")

#: Paper-reported reference values, quoted from the ICDE 2021 text.
PAPER = {
    # Table 1: recently popular papers among the top-100 by STI.
    "table1": {"hep-th": 41, "aps": 54, "pmc": 54, "dblp": 63},
    # Table 2: time horizon (years) per test ratio.
    "table2": {
        "hep-th": {1.2: 1, 1.4: 2, 1.6: 3, 1.8: 4, 2.0: 5},
        "aps": {1.2: 4, 1.4: 7, 1.6: 10, 1.8: 13, 2.0: 16},
        "pmc": {1.2: 1, 1.4: 2, 1.6: 2, 1.8: 3, 2.0: 3},
        "dblp": {1.2: 1, 1.4: 3, 1.6: 4, 1.8: 6, 2.0: 7},
    },
    # Section 4.2: fitted recency decay rates.
    "w": {"hep-th": -0.48, "aps": -0.12, "pmc": -0.16, "dblp": -0.16},
    # Section 4.2 / Figures 2, 6: best correlation and the NO-ATT /
    # ATT-ONLY maxima per dataset.
    "best_rho": {"hep-th": 0.6519, "aps": 0.6295, "pmc": 0.494, "dblp": 0.6316},
    "rho_no_att": {"hep-th": 0.56, "aps": 0.581, "pmc": 0.411, "dblp": 0.529},
    "rho_att_only": {"hep-th": 0.615, "aps": 0.537, "pmc": 0.45, "dblp": 0.571},
    # Section 4.2 / Figures 2, 7: best nDCG@50 and the ablation maxima.
    "best_ndcg": {"hep-th": 0.8930, "aps": 0.7293, "pmc": 0.9553, "dblp": 0.9449},
    "ndcg_no_att": {"hep-th": 0.669, "aps": 0.635, "pmc": 0.6, "dblp": 0.663},
    "ndcg_att_only": {"hep-th": 0.89, "aps": 0.692, "pmc": 0.916, "dblp": 0.916},
    # Section 4.4: iterations to eps <= 1e-12 at alpha = 0.5.
    "iterations": {
        "AR": {"hep-th": 30, "aps": 30, "pmc": 20, "dblp": 30},
        "CR": {"hep-th": 51, "aps": 46, "pmc": 26, "dblp": 47},
        "FR": {"hep-th": 35, "aps": 30, "pmc": 26, "dblp": 23},
    },
}


@pytest.fixture(scope="session")
def datasets():
    """All four synthetic corpora at the benchmark scale."""
    return {
        name: generate_dataset(name, size=BENCH_SIZE)
        for name in DATASET_NAMES
    }


@pytest.fixture(scope="session")
def default_splits(datasets):
    """The default (test ratio 1.6) split of each corpus."""
    return {
        name: split_by_ratio(network, 1.6)
        for name, network in datasets.items()
    }


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every reproduced table/figure after the benchmark run."""
    from benchmarks._report import EMITTED, RESULTS_DIR

    if not EMITTED:
        return
    terminalreporter.write_sep(
        "=", f"reproduced tables & figures (also in {RESULTS_DIR})"
    )
    for name, text in EMITTED:
        terminalreporter.write_sep("-", name)
        terminalreporter.write_line(text)
