"""E12 — the scalability claim: "AttRank's implementation is scalable and
can be executed on very large citation networks" (Section 1).

Times a full AttRank solve (attention + recency vectors, operator build,
power iteration to 1e-12) on growing corpora and checks the growth is
near-linear in the number of citations (sparse matvec dominated).
"""

from __future__ import annotations

import time

from benchmarks._report import emit
from repro.analysis.reporting import format_table
from repro.core.attrank import AttRank
from repro.synth.profiles import generate_dataset

SIZES = (1000, 2000, 4000, 8000)


def _solve(network):
    method = AttRank(
        alpha=0.5, beta=0.3, gamma=0.2, attention_window=3, decay_rate=-0.5
    )
    method.scores(network)
    return method.last_convergence.iterations


def test_scalability(benchmark):
    networks = {
        n: generate_dataset("dblp", n_papers=n, seed=7) for n in SIZES
    }

    timings = {}
    iterations = {}
    for n, network in networks.items():
        start = time.perf_counter()
        iterations[n] = _solve(network)
        timings[n] = time.perf_counter() - start

    # The benchmark fixture times the largest instance for the record.
    benchmark.pedantic(
        lambda: _solve(networks[SIZES[-1]]), rounds=3, iterations=1
    )

    rows = [
        [
            n,
            networks[n].n_citations,
            f"{timings[n] * 1000:.1f}",
            iterations[n],
            f"{timings[n] / networks[n].n_citations * 1e6:.2f}",
        ]
        for n in SIZES
    ]
    emit(
        "scalability",
        format_table(
            ["papers", "citations", "time (ms)", "iterations", "us/citation"],
            rows,
            title="AttRank solve time vs network size (alpha=0.5, eps=1e-12)",
        ),
    )

    # Near-linear scaling: time per citation must not blow up with size
    # (allow 4x headroom between the smallest and largest instance for
    # constant overheads and cache effects).
    per_edge_small = timings[SIZES[0]] / networks[SIZES[0]].n_citations
    per_edge_large = timings[SIZES[-1]] / networks[SIZES[-1]].n_citations
    assert per_edge_large < per_edge_small * 4
    # Iteration count is scale-free (a property of alpha, not of n).
    assert max(iterations.values()) - min(iterations.values()) <= 15
