"""E5 — Table 3 and Section 4.2: parameter space and the fit of w.

Verifies that the explored parameter grids have exactly the paper's
shape (Table 3 for AttRank, Table 4 counts for the competitors) and
reproduces the Section-4.2 exponential fit of the recency decay rate w
per dataset (paper: -0.48 hep-th, -0.12 APS, -0.16 PMC and DBLP).
"""

from __future__ import annotations

from benchmarks._report import emit
from benchmarks.conftest import PAPER
from repro.analysis.reporting import format_table
from repro.core.recency import fit_decay_rate
from repro.eval.grids import grid_size
from repro.synth.profiles import DATASET_NAMES


def test_table3_grid_sizes(benchmark):
    sizes = benchmark.pedantic(
        lambda: {m: grid_size(m) for m in ("AR", "CR", "FR", "RAM", "ECM", "WSDM")},
        rounds=1,
        iterations=1,
    )
    paper_counts = {
        "AR": 250, "CR": 20, "FR": 120, "RAM": 9, "ECM": 25, "WSDM": 50
    }
    rows = [
        [method, paper_counts[method], sizes[method]]
        for method in paper_counts
    ]
    emit(
        "table3_grid_sizes",
        format_table(
            ["method", "paper settings", "measured settings"],
            rows,
            title="Tables 3 & 4: explored parameter settings per method",
        ),
    )
    assert sizes == paper_counts


def test_section42_w_fit(datasets, benchmark):
    def compute():
        return {
            name: fit_decay_rate(datasets[name]) for name in DATASET_NAMES
        }

    fits = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [
        [
            name,
            f"{PAPER['w'][name]:.2f}",
            f"{fits[name].decay_rate:.3f}",
            f"{fits[name].r_squared:.3f}",
        ]
        for name in DATASET_NAMES
    ]
    emit(
        "section42_w_fit",
        format_table(
            ["dataset", "paper w", "measured w", "fit r^2"],
            rows,
            title="Section 4.2: exponential fit of the citation-age tail",
        ),
    )

    # Shape: all rates negative; hep-th decays much faster than the rest.
    for name in DATASET_NAMES:
        assert fits[name].decay_rate < 0
    others = [fits[n].decay_rate for n in ("aps", "pmc", "dblp")]
    assert fits["hep-th"].decay_rate < min(others)
