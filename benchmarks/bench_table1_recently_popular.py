"""E1 — Table 1: recently popular papers in the top-100 by STI.

Paper: "roughly half of the top-100 papers were, indeed, recently
popular" — 41 (hep-th), 54 (APS), 54 (PMC), 63 (DBLP) out of 100 at the
default test ratio, with 'recently popular' = among the top cited of the
current state's last five years.
"""

from __future__ import annotations

from benchmarks._report import emit
from benchmarks.conftest import PAPER
from repro.analysis.popularity import recently_popular_overlap
from repro.analysis.reporting import format_table
from repro.synth.profiles import DATASET_NAMES


def test_table1_recently_popular(default_splits, benchmark):
    def compute():
        return {
            name: recently_popular_overlap(
                default_splits[name], k=100, window_years=5.0
            )
            for name in DATASET_NAMES
        }

    results = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = [
        [
            name,
            PAPER["table1"][name],
            results[name].overlap,
            f"{results[name].fraction:.2f}",
        ]
        for name in DATASET_NAMES
    ]
    emit(
        "table1_recently_popular",
        format_table(
            ["dataset", "paper (of 100)", "measured (of 100)", "fraction"],
            rows,
            title="Table 1: recently popular papers in top-100 by STI",
        ),
    )

    # Shape: the overlap is substantial on every corpus (the paper's
    # point is that it is *roughly half*, not a corner case).
    for name in DATASET_NAMES:
        assert results[name].overlap >= 25, name
