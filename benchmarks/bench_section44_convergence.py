"""E11 — Section 4.4: convergence-rate comparison.

The paper reports, for alpha = 0.5 and eps <= 1e-12: AttRank < 30
iterations (< 20 on PMC) versus CiteRank's 51/46/26/47 and FutureRank's
35/30/26/23 — and that AttRank's count shrinks with alpha, hitting one
effective iteration at alpha = 0.

Note on CiteRank: this library implements CR as the geometric-sum fixed
point ``x <- rho + alpha*W x``, whose residual contracts faster than
alpha because probability mass leaks at reference-free papers; its
measured iteration counts are therefore *lower* than the counts the
paper reports for the authors' own CR implementation.  The asserted
shape is restricted to the claims that transfer across implementations:
AttRank stays within the paper's <30/<20 envelope, needs no more
iterations than FutureRank, and speeds up as alpha shrinks.
"""

from __future__ import annotations

from benchmarks._report import emit
from benchmarks.conftest import PAPER
from repro.analysis.convergence import convergence_study
from repro.analysis.reporting import format_table
from repro.synth.profiles import DATASET_NAMES

ALPHAS = (0.1, 0.3, 0.5)


def test_section44_convergence(datasets, benchmark):
    def compute():
        return {
            name: convergence_study(datasets[name], alphas=ALPHAS)
            for name in DATASET_NAMES
        }

    studies = benchmark.pedantic(compute, rounds=1, iterations=1)

    rows = []
    for name in DATASET_NAMES:
        report = studies[name][0.5]
        for method in ("AR", "CR", "FR"):
            if method not in report.iterations:
                continue
            paper_value = PAPER["iterations"][method][name]
            note = "<" if method == "AR" else "="
            rows.append(
                [
                    name,
                    method,
                    f"{note}{paper_value}",
                    report.iterations[method],
                    "yes" if report.converged[method] else "no",
                ]
            )
    emit(
        "section44_convergence",
        format_table(
            ["dataset", "method", "paper iters", "measured iters", "converged"],
            rows,
            title=(
                "Section 4.4: iterations to eps <= 1e-12 at alpha = 0.5"
            ),
        ),
    )

    for name in DATASET_NAMES:
        at_half = studies[name][0.5]
        # AttRank converges quickly (the paper's < 30 envelope, with a
        # small margin for the synthetic corpora).
        assert at_half.converged["AR"], name
        assert at_half.iterations["AR"] <= 35, name
        # ... and needs no more iterations than FutureRank.
        if "FR" in at_half.iterations:
            assert (
                at_half.iterations["AR"] <= at_half.iterations["FR"] + 1
            ), name
        # Fewer iterations at smaller alpha.
        assert (
            studies[name][0.1].iterations["AR"]
            <= studies[name][0.5].iterations["AR"]
        ), name
