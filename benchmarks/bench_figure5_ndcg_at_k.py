"""E10 — Figure 5: nDCG@k for k in {5, 10, 50, 100, 500} at ratio 1.6.

Section 4.3.2's second experiment.  Paper findings to reproduce in
shape:

* AttRank is at least on par with every rival at every k;
* at small k AttRank's nDCG approaches 1 on most datasets;
* RAM/ECM remain the best existing methods.
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis.reporting import format_series
from repro.eval.experiment import compare_over_k
from repro.synth.profiles import DATASET_NAMES

K_VALUES = (5, 10, 50, 100, 500)


def test_figure5_ndcg_at_k(datasets, benchmark):
    def compute():
        return {
            name: compare_over_k(
                datasets[name],
                dataset=name,
                test_ratio=1.6,
                k_values=K_VALUES,
            )
            for name in DATASET_NAMES
        }

    panels = benchmark.pedantic(compute, rounds=1, iterations=1)

    blocks = []
    for name in DATASET_NAMES:
        panel = panels[name]
        blocks.append(
            format_series(
                "k",
                [int(k) for k in panel.x_values],
                {m: panel.series(m) for m in panel.cells},
                title=f"Figure 5 [{name}]: nDCG@k at test ratio 1.6",
            )
        )
    emit("figure5_ndcg_at_k", "\n\n".join(blocks))

    for name in DATASET_NAMES:
        panel = panels[name]
        for position, k in enumerate(panel.x_values):
            ar = panel.cells["AR"][position].score
            competitors = [
                panel.cells[m][position].score
                for m in panel.cells
                if m not in ("AR", "NO-ATT", "ATT-ONLY")
            ]
            # "at least on par, mostly outperforms" — the paper itself
            # records one small loss (nDCG@5 on APS, -0.015), so allow
            # the same tolerance.
            assert ar >= max(competitors) - 0.02, (name, k)
        # Small-k headroom: nDCG@5 is high on the fast-moving corpora.
        assert panel.cells["AR"][0].score > 0.75, name
