"""Incremental serving — warm-started delta updates vs cold recomputes.

The serving layer's core claim: after appending a small delta to an
indexed snapshot, re-solving each method warm-started from its previous
solution reaches the 1e-12 fixed point in fewer iterations (and less
wall-clock) than a cold solve from the uniform vector — and the warm
solution is numerically the *same* fixed point (paper Theorem 1: the
solution is start-independent).

The bench replays history: the newest ``k`` papers of a corpus are
withheld, the index is built on the rest, and the withheld slice
arrives as a delta, for ``k`` spanning 0.3 %-25 % of the corpus.
"""

from __future__ import annotations

import time

import numpy as np

from benchmarks._report import emit
from repro.analysis.reporting import format_table
from repro.graph.temporal import chronological_order
from repro.serve import DeltaUpdater, ScoreIndex, delta_between
from repro.synth.profiles import generate_dataset

N_PAPERS = 3000
DELTA_SIZES = (10, 50, 200, 750)
METHODS = {
    "AR": dict(
        alpha=0.5, beta=0.3, gamma=0.2, attention_window=3, decay_rate=-0.5
    ),
    "PR": {},
}


def _cold_index(network):
    index = ScoreIndex(network)
    for label, params in METHODS.items():
        index.add_method(label, **params)
    return index


def test_incremental_update(benchmark):
    full = generate_dataset("dblp", n_papers=N_PAPERS, seed=7)
    order = chronological_order(full)

    started = time.perf_counter()
    cold_full = _cold_index(full)
    cold_seconds = time.perf_counter() - started
    cold_iters = {
        label: cold_full.entry(label).iterations for label in METHODS
    }

    rows = []
    savings = {}
    for k in DELTA_SIZES:
        base = full.subnetwork(order[: N_PAPERS - k])
        delta = delta_between(base, full)
        index = _cold_index(base)
        updater = DeltaUpdater(index)

        started = time.perf_counter()
        extended = updater.extend_network(delta)
        extend_seconds = time.perf_counter() - started
        started = time.perf_counter()
        entries = index.refresh(extended, warm=True)
        warm_seconds = time.perf_counter() - started

        # Same fixed point as the cold solve on the full network.
        for label in METHODS:
            drift = float(
                np.abs(index.scores(label) - cold_full.scores(label)).sum()
            )
            assert drift < 1e-9, (label, k, drift)

        warm_iters = {
            label: entries[label].iterations for label in METHODS
        }
        savings[k] = {
            label: cold_iters[label] - warm_iters[label] for label in METHODS
        }
        rows.append(
            [
                k,
                delta.n_citations,
                f"{warm_iters['AR']}/{cold_iters['AR']}",
                f"{warm_iters['PR']}/{cold_iters['PR']}",
                f"{extend_seconds * 1000:.1f}",
                f"{warm_seconds * 1000:.1f}",
                f"{cold_seconds * 1000:.1f}",
            ]
        )

    emit(
        "serve_incremental",
        format_table(
            [
                "delta papers",
                "delta citations",
                "AR iters (warm/cold)",
                "PR iters (warm/cold)",
                "extend (ms)",
                "warm re-solve (ms)",
                "cold solve (ms)",
            ],
            rows,
            title=(
                f"warm-started delta update vs cold recompute "
                f"({N_PAPERS} papers, eps=1e-12)"
            ),
        ),
    )

    # The serving claim: small deltas converge in strictly fewer
    # iterations than a cold recompute, for both indexed methods.
    smallest = DELTA_SIZES[0]
    for label in METHODS:
        assert savings[smallest][label] > 0, (label, savings)
    # Savings never go negative: a warm start is at worst a cold start.
    for k in DELTA_SIZES:
        for label in METHODS:
            assert savings[k][label] >= 0, (label, k, savings)

    # Record the steady-state update cost for the benchmark history.
    base = full.subnetwork(order[: N_PAPERS - DELTA_SIZES[0]])
    delta = delta_between(base, full)

    def _update_once():
        index = _cold_index(base)
        return DeltaUpdater(index).apply(delta)

    benchmark.pedantic(_update_once, rounds=3, iterations=1)
