"""E9 — Figure 4: nDCG@50 vs test ratio, all methods.

Section 4.3.2's first experiment: per (dataset, ratio) each method is
tuned for nDCG@50.  Paper findings to reproduce in shape:

* AttRank outperforms all competitors at every ratio;
* the best existing method is RAM or ECM (not the PageRank-flavoured
  CR/FR);
* NO-ATT drops sharply; ATT-ONLY is competitive but below AttRank.
"""

from __future__ import annotations

from benchmarks._report import emit
from repro.analysis.reporting import format_series
from repro.eval.experiment import compare_over_ratios
from repro.eval.metrics import NDCG
from repro.eval.split import DEFAULT_TEST_RATIOS
from repro.synth.profiles import DATASET_NAMES


def test_figure4_ndcg50(datasets, benchmark):
    def compute():
        return {
            name: compare_over_ratios(
                datasets[name],
                dataset=name,
                metric=NDCG(50),
                test_ratios=DEFAULT_TEST_RATIOS,
            )
            for name in DATASET_NAMES
        }

    panels = benchmark.pedantic(compute, rounds=1, iterations=1)

    blocks = []
    for name in DATASET_NAMES:
        panel = panels[name]
        blocks.append(
            format_series(
                "ratio",
                panel.x_values,
                {m: panel.series(m) for m in panel.cells},
                title=f"Figure 4 [{name}]: nDCG@50 vs test ratio",
            )
        )
    emit("figure4_ndcg50", "\n\n".join(blocks))

    for name in DATASET_NAMES:
        panel = panels[name]
        for position, ratio in enumerate(panel.x_values):
            ar = panel.cells["AR"][position].score
            competitors = {
                m: panel.cells[m][position].score
                for m in panel.cells
                if m not in ("AR", "NO-ATT", "ATT-ONLY")
            }
            # AttRank wins (small noise margin).
            assert ar >= max(competitors.values()) - 0.02, (name, ratio)
            # The strongest existing method is RAM or ECM.
            best_existing = max(competitors, key=competitors.get)
            assert best_existing in ("RAM", "ECM"), (name, ratio, best_existing)
            # Ablation ordering.
            assert ar >= panel.cells["ATT-ONLY"][position].score
            assert (
                ar > panel.cells["NO-ATT"][position].score + 0.02
            ), (name, ratio)
