"""Unit tests for repro.eval.experiment (Figure 3/4/5 drivers).

The full paper grids are exercised in the benchmarks; these tests use
restricted lineups and small networks to validate the orchestration
logic quickly.
"""

import pytest

from repro.errors import EvaluationError
from repro.eval.experiment import (
    COMPARISON_METHODS,
    compare_over_k,
    compare_over_ratios,
    methods_available,
    run_comparison_at_ratio,
)
from repro.eval.metrics import NDCG, SpearmanRho


class TestMethodsAvailable:
    def test_full_lineup_with_metadata(self, dblp_tiny):
        assert methods_available(dblp_tiny) == COMPARISON_METHODS

    def test_wsdm_dropped_without_venues(self, chain):
        lineup = methods_available(chain)
        assert "WSDM" not in lineup
        assert "FR" not in lineup  # no authors either
        assert "AR" in lineup


class TestRunComparisonAtRatio:
    def test_restricted_lineup(self, hepth_tiny):
        tuned = run_comparison_at_ratio(
            hepth_tiny,
            1.6,
            SpearmanRho(),
            methods=("RAM", "ECM"),
        )
        assert set(tuned) == {"RAM", "ECM"}
        for result in tuned.values():
            assert -1 <= result.best_score <= 1

    def test_unknown_method_rejected(self, hepth_tiny):
        with pytest.raises(EvaluationError, match="not part of"):
            run_comparison_at_ratio(
                hepth_tiny, 1.6, SpearmanRho(), methods=("XX",)
            )


class TestCompareOverRatios:
    def test_series_shape(self, hepth_tiny):
        series = compare_over_ratios(
            hepth_tiny,
            dataset="hep-th",
            metric=SpearmanRho(),
            test_ratios=(1.4, 1.8),
            methods=("RAM", "ATT-ONLY"),
        )
        assert series.x_values == (1.4, 1.8)
        assert set(series.cells) == {"RAM", "ATT-ONLY"}
        assert len(series.series("RAM")) == 2

    def test_winner_at(self, hepth_tiny):
        series = compare_over_ratios(
            hepth_tiny,
            metric=SpearmanRho(),
            test_ratios=(1.6,),
            methods=("RAM", "ATT-ONLY"),
        )
        winner = series.winner_at(1.6)
        assert winner in ("RAM", "ATT-ONLY")
        loser_scores = [
            series.cells[m][0].score for m in ("RAM", "ATT-ONLY")
        ]
        assert series.cells[winner][0].score == max(loser_scores)

    def test_default_metric_is_spearman(self, hepth_tiny):
        series = compare_over_ratios(
            hepth_tiny, test_ratios=(1.6,), methods=("RAM",)
        )
        assert series.metric == "spearman"


class TestCompareOverK:
    def test_k_axis(self, hepth_tiny):
        series = compare_over_k(
            hepth_tiny,
            test_ratio=1.6,
            k_values=(5, 50),
            methods=("RAM", "ATT-ONLY"),
        )
        assert series.x_label == "k"
        assert series.x_values == (5.0, 50.0)
        for method in ("RAM", "ATT-ONLY"):
            for value in series.series(method):
                assert 0.0 <= value <= 1.0

    def test_cells_record_tuning_results(self, hepth_tiny):
        series = compare_over_k(
            hepth_tiny, k_values=(10,), methods=("RAM",)
        )
        cell = series.cells["RAM"][0]
        assert cell.method == "RAM"
        assert cell.result.metric == "ndcg@10"
        assert cell.score == cell.result.best_score
