"""Unit tests for repro.baselines.futurerank."""

import numpy as np
import pytest

from repro.baselines.futurerank import FutureRank
from repro.errors import ConfigurationError, GraphError
from tests.conftest import assert_probability_vector


class TestConfiguration:
    def test_coefficients_validated(self):
        with pytest.raises(ConfigurationError):
            FutureRank(alpha=0.5, beta=0.4, gamma=0.3)  # sum > 1
        with pytest.raises(ConfigurationError):
            FutureRank(alpha=-0.1, beta=0.0, gamma=0.5)

    def test_rho_must_be_negative(self):
        with pytest.raises(ConfigurationError):
            FutureRank(rho=0.0)
        with pytest.raises(ConfigurationError):
            FutureRank(rho=0.5)

    def test_params(self):
        params = FutureRank(alpha=0.4, beta=0.1, gamma=0.5, rho=-0.62).params()
        assert params["rho"] == -0.62


class TestScores:
    def test_probability_vector(self, toy):
        scores = FutureRank(alpha=0.4, beta=0.1, gamma=0.5).scores(toy)
        assert_probability_vector(scores)

    def test_requires_authors_when_beta_positive(self, chain):
        with pytest.raises(GraphError, match="author metadata"):
            FutureRank(alpha=0.4, beta=0.1, gamma=0.5).scores(chain)

    def test_beta_zero_works_without_authors(self, chain):
        scores = FutureRank(alpha=0.4, beta=0.0, gamma=0.5).scores(chain)
        assert_probability_vector(scores)

    def test_recency_weights_favor_new(self, toy):
        weights = FutureRank().recency_weights(toy)
        assert weights[toy.index_of("H")] > weights[toy.index_of("A")]

    def test_author_component_changes_scores(self, dblp_tiny):
        without = FutureRank(alpha=0.4, beta=0.0, gamma=0.5).scores(dblp_tiny)
        with_authors = FutureRank(alpha=0.4, beta=0.3, gamma=0.3).scores(
            dblp_tiny
        )
        assert not np.allclose(without, with_authors)

    def test_never_raises_on_nonconvergence(self, hepth_tiny):
        """FR 'did not, in practice, converge under all possible
        settings' (paper §4.3): the budget is a soft cap."""
        method = FutureRank(
            alpha=0.5, beta=0.3, gamma=0.2, max_iterations=3
        )
        scores = method.scores(hepth_tiny)
        assert scores.shape == (hepth_tiny.n_papers,)
        assert method.last_convergence is not None

    def test_uniform_mass_completes_budget(self, toy):
        """When alpha+beta+gamma < 1 the remainder is uniform jumps."""
        scores = FutureRank(alpha=0.2, beta=0.0, gamma=0.2).scores(toy)
        assert_probability_vector(scores)
        assert np.all(scores > 0)
