"""Unit tests for repro.eval.metrics (Spearman's rho and nDCG@k)."""

import numpy as np
import pytest
from scipy import stats

from repro.errors import EvaluationError
from repro.eval.metrics import (
    NDCG,
    SpearmanRho,
    dcg_at_k,
    ndcg_at_k,
    spearman_rho,
)


class TestSpearman:
    def test_perfect_correlation(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rho(a, 10 * a) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert spearman_rho(a, -a) == pytest.approx(-1.0)

    def test_matches_scipy_with_ties(self):
        rng = np.random.default_rng(7)
        a = rng.integers(0, 5, size=200).astype(float)  # many ties
        b = a + rng.normal(0, 1.0, size=200)
        expected = stats.spearmanr(a, b).statistic
        assert spearman_rho(a, b) == pytest.approx(expected, abs=1e-12)

    def test_matches_scipy_continuous(self):
        rng = np.random.default_rng(8)
        a = rng.random(500)
        b = rng.random(500)
        expected = stats.spearmanr(a, b).statistic
        assert spearman_rho(a, b) == pytest.approx(expected, abs=1e-12)

    def test_constant_vector_rejected(self):
        with pytest.raises(EvaluationError, match="constant"):
            spearman_rho(np.ones(5), np.arange(5.0))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(EvaluationError):
            spearman_rho(np.ones(3), np.ones(4))

    def test_too_short_rejected(self):
        with pytest.raises(EvaluationError):
            spearman_rho(np.array([1.0]), np.array([2.0]))

    def test_metric_object(self):
        metric = SpearmanRho()
        assert metric.name == "spearman"
        a = np.array([1.0, 2.0, 3.0])
        assert metric(a, a) == pytest.approx(1.0)


class TestDCG:
    def test_hand_computed(self):
        # DCG@3 of gains [3, 2, 1] = 3/log2(2) + 2/log2(3) + 1/log2(4).
        gains = np.array([3.0, 2.0, 1.0])
        expected = 3 / 1 + 2 / np.log2(3) + 1 / 2
        assert dcg_at_k(gains, 3) == pytest.approx(expected)

    def test_k_truncates(self):
        gains = np.array([3.0, 2.0, 1.0])
        assert dcg_at_k(gains, 1) == pytest.approx(3.0)

    def test_k_validated(self):
        with pytest.raises(EvaluationError):
            dcg_at_k(np.array([1.0]), 0)

    def test_empty_gains(self):
        assert dcg_at_k(np.array([]), 5) == 0.0


class TestNDCG:
    def test_perfect_ranking_scores_one(self):
        relevance = np.array([5.0, 3.0, 2.0, 1.0, 0.0])
        assert ndcg_at_k(relevance, relevance, 5) == pytest.approx(1.0)

    def test_worst_ranking_below_one(self):
        relevance = np.array([5.0, 3.0, 2.0, 1.0, 0.0])
        reversed_scores = -relevance
        value = ndcg_at_k(reversed_scores, relevance, 5)
        assert 0 < value < 1

    def test_hand_computed_swap(self):
        """Swapping the top two items gives a computable nDCG@2."""
        relevance = np.array([2.0, 1.0])
        scores = np.array([1.0, 2.0])  # ranks item 1 first
        ideal = 2 / 1 + 1 / np.log2(3)
        achieved = 1 / 1 + 2 / np.log2(3)
        assert ndcg_at_k(scores, relevance, 2) == pytest.approx(
            achieved / ideal
        )

    def test_all_zero_relevance_defined_as_zero(self):
        assert ndcg_at_k(np.array([1.0, 2.0]), np.zeros(2), 2) == 0.0

    def test_range(self, hepth_split):
        rng = np.random.default_rng(0)
        scores = rng.random(hepth_split.current.n_papers)
        for k in (5, 10, 50, 100, 500):
            value = ndcg_at_k(scores, hepth_split.sti, k)
            assert 0.0 <= value <= 1.0

    def test_negative_relevance_rejected(self):
        with pytest.raises(EvaluationError):
            ndcg_at_k(np.array([1.0, 2.0]), np.array([-1.0, 2.0]), 2)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(EvaluationError):
            ndcg_at_k(np.ones(3), np.ones(4), 2)

    def test_k_larger_than_list(self):
        relevance = np.array([2.0, 1.0])
        assert ndcg_at_k(relevance, relevance, 100) == pytest.approx(1.0)

    def test_metric_object(self):
        metric = NDCG(10)
        assert metric.name == "ndcg@10"
        with pytest.raises(EvaluationError):
            NDCG(0)

    def test_oracle_beats_noise(self, hepth_split):
        """Scoring by the ground truth itself must dominate random
        scores at every cut-off."""
        rng = np.random.default_rng(1)
        noise = rng.random(hepth_split.current.n_papers)
        for k in (5, 50, 500):
            oracle = ndcg_at_k(hepth_split.sti, hepth_split.sti, k)
            random_score = ndcg_at_k(noise, hepth_split.sti, k)
            assert oracle == pytest.approx(1.0)
            assert random_score < oracle
