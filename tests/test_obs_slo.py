"""Tests for repro.obs.slo — burn-rate objectives over the TSDB.

The engine is pure arithmetic over stored points, so every test
injects its own timestamps and drives a private registry: no gateway,
no sleeping, exact expected burn rates.
"""

from __future__ import annotations

import pytest

from obsschema import validate_slo
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.obs.slo import (
    DEFAULT_BURN_RULES,
    DEFAULT_SLOS,
    SLO,
    SLOEngine,
    format_window,
    parse_slo,
)
from repro.obs.tsdb import TimeSeriesStore


def _fixture():
    """(responses counter, latency histogram, store, engine)."""
    registry = MetricsRegistry()
    responses = registry.counter(
        "repro_gateway_responses_total", "", ("endpoint", "status")
    )
    latency = registry.histogram(
        "repro_gateway_request_latency_seconds",
        "",
        ("endpoint",),
        bounds=(0.1, 0.25, 0.5),
    )
    store = TimeSeriesStore(registry.collect, interval=0.0)
    return responses, latency, store, SLOEngine(store)


class TestSpecParsing:
    def test_availability_spec(self):
        slo = parse_slo("availability:99.9")
        assert slo.kind == "availability"
        assert slo.objective == pytest.approx(0.999)
        assert slo.budget == pytest.approx(0.001)

    def test_latency_spec_in_seconds_and_ms(self):
        seconds = parse_slo("latency:99:0.25")
        millis = parse_slo("latency:99:250ms")
        assert seconds.threshold == millis.threshold == 0.25
        assert seconds.objective == millis.objective == 0.99

    @pytest.mark.parametrize(
        "spec",
        [
            "availability",
            "availability:0",
            "availability:100",
            "availability:banana",
            "latency:99",
            "latency:99:fast",
            "throughput:99",
        ],
    )
    def test_bad_specs_raise(self, spec):
        with pytest.raises(ConfigurationError):
            parse_slo(spec)

    def test_slo_validation(self):
        with pytest.raises(ConfigurationError, match="kind"):
            SLO(name="x", kind="throughput", objective=0.9)
        with pytest.raises(ConfigurationError, match="objective"):
            SLO(name="x", kind="availability", objective=1.0)
        with pytest.raises(ConfigurationError, match="threshold"):
            SLO(name="x", kind="latency", objective=0.9)

    def test_format_window(self):
        assert format_window(300) == "5m"
        assert format_window(3600) == "1h"
        assert format_window(21600) == "6h"
        assert format_window(259200) == "3d"
        assert format_window(90) == "90s"


class TestEvaluation:
    def test_no_traffic_is_fully_compliant(self):
        _, _, store, engine = _fixture()
        store.scrape_once(now=0.0)
        document = engine.evaluate(now=0.0)
        validate_slo(document)
        assert document["windows"] == ["5m", "30m", "1h", "6h", "3d"]
        assert document["firing"] is False
        for objective in document["objectives"]:
            assert objective["compliance"] == 1.0
            assert objective["budget_consumed"] == 0.0
            assert set(objective["burn_rates"].values()) == {0.0}

    def test_active_errors_burn_exactly(self):
        responses, latency, store, engine = _fixture()
        store.scrape_once(now=0.0)  # baseline point: all zeros
        responses.inc(90, endpoint="top", status="200")
        responses.inc(10, endpoint="top", status="500")
        for _ in range(90):
            latency.observe(0.05, endpoint="top")
        for _ in range(10):
            latency.observe(1.0, endpoint="top")
        # Scrape-time traffic on a non-query endpoint must not count.
        for _ in range(20):
            latency.observe(5.0, endpoint="metrics")
        store.scrape_once(now=100.0)
        document = engine.evaluate(now=100.0)
        validate_slo(document)
        availability, latency_slo = document["objectives"]

        # 10% errors against a 0.1% budget: burn 100 on every window
        # (both stored points bracket all of them), so every rule
        # (14.4, 6.0, 1.0) fires on both its windows.
        assert availability["name"] == "availability"
        assert availability["total"] == 100.0
        assert availability["good"] == 90.0
        assert availability["compliance"] == pytest.approx(0.9)
        assert availability["budget_consumed"] == 1.0
        for burn in availability["burn_rates"].values():
            assert burn == pytest.approx(100.0)
        assert [a["firing"] for a in availability["alerts"]] == [
            True, True, True,
        ]

        # Latency: 10% of query requests above 250ms against a 1%
        # budget is burn 10 — page@14.4 stays quiet, page@6.0 and
        # ticket@1.0 fire.  "Good" is the exact cumulative count at
        # the 0.25 bucket bound; the metrics-endpoint observations
        # are excluded from both good and total.
        assert latency_slo["kind"] == "latency"
        assert latency_slo["threshold_seconds"] == 0.25
        assert latency_slo["total"] == 100.0
        assert latency_slo["good"] == 90.0
        for burn in latency_slo["burn_rates"].values():
            assert burn == pytest.approx(10.0)
        assert [a["firing"] for a in latency_slo["alerts"]] == [
            False, True, True,
        ]
        assert document["firing"] is True

    def test_stale_errors_do_not_page(self):
        responses, _, store, engine = _fixture()
        store.scrape_once(now=0.0)
        responses.inc(100, endpoint="top", status="500")
        store.scrape_once(now=50.0)
        # Seven hours of silence later: every window up to 6h starts
        # after the incident, so only the 3d window still sees it —
        # and no rule pairs 3d with a short window that agrees.
        store.scrape_once(now=25050.0)
        document = engine.evaluate(now=25050.0)
        validate_slo(document)
        availability = document["objectives"][0]
        assert availability["compliance"] == 0.0  # lifetime truth
        assert availability["burn_rates"]["6h"] == 0.0
        assert availability["burn_rates"]["3d"] == pytest.approx(1000.0)
        assert availability["firing"] is False
        assert document["firing"] is False

    def test_scrape_true_appends_the_point_it_evaluates(self):
        responses, _, store, engine = _fixture()
        responses.inc(5, endpoint="top", status="200")
        assert store.scrapes_total == 0
        document = engine.evaluate(scrape=True, now=10.0)
        assert store.scrapes_total == 1
        validate_slo(document)
        assert document["objectives"][0]["total"] == 5.0

    def test_custom_objectives_from_cli_specs(self):
        registry = MetricsRegistry()
        registry.counter(
            "repro_gateway_responses_total", "", ("endpoint", "status")
        ).inc(7, endpoint="top", status="200")
        store = TimeSeriesStore(registry.collect, interval=0.0)
        engine = SLOEngine(
            store, slos=(parse_slo("availability:99"),)
        )
        document = engine.evaluate(scrape=True, now=0.0)
        validate_slo(document)
        assert [o["name"] for o in document["objectives"]] == [
            "availability-99"
        ]
        assert document["objectives"][0]["error_budget"] == (
            pytest.approx(0.01)
        )

    def test_engine_requires_objectives_and_defaults_are_sane(self):
        _, _, store, _ = _fixture()
        with pytest.raises(ConfigurationError, match="at least one"):
            SLOEngine(store, slos=())
        assert [s.name for s in DEFAULT_SLOS] == [
            "availability", "latency-p99-250ms",
        ]
        assert [r.severity for r in DEFAULT_BURN_RULES] == [
            "page", "page", "ticket",
        ]
