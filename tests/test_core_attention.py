"""Unit tests for repro.core.attention (Equation 2)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.core.attention import attention_counts, attention_vector
from tests.conftest import assert_probability_vector


class TestAttentionCounts:
    def test_toy_window(self, toy):
        # Window (2000, 2003]: F->D,E,A; G->F,E; H->F,G.
        counts = attention_counts(toy, 3.0)
        assert counts[toy.index_of("F")] == 2
        assert counts[toy.index_of("E")] == 2
        assert counts[toy.index_of("A")] == 1
        assert counts.sum() == 7

    def test_explicit_now(self, toy):
        # now=2001, window 1 year -> only F's citations (made at 2001).
        counts = attention_counts(toy, 1.0, now=2001.0)
        assert counts.sum() == 3

    def test_non_positive_window_rejected(self, toy):
        with pytest.raises(ConfigurationError):
            attention_counts(toy, 0.0)
        with pytest.raises(ConfigurationError):
            attention_counts(toy, -2.0)


class TestAttentionVector:
    def test_equation_2_normalisation(self, toy):
        vector = attention_vector(toy, 3.0)
        assert_probability_vector(vector)
        # A received 1 of the 7 windowed citations.
        assert vector[toy.index_of("A")] == pytest.approx(1 / 7)

    def test_empty_window_falls_back_to_uniform(self, two_dangling):
        vector = attention_vector(two_dangling, 5.0)
        assert np.allclose(vector, 0.5)

    def test_window_growth_monotone_mass(self, hepth_tiny):
        """A longer window can only add citations, never remove them."""
        short = attention_counts(hepth_tiny, 1.0)
        long = attention_counts(hepth_tiny, 4.0)
        assert np.all(long >= short)

    def test_synthetic_is_probability_vector(self, hepth_tiny):
        for window in (1.0, 2.0, 5.0):
            assert_probability_vector(attention_vector(hepth_tiny, window))

    def test_recent_papers_dominate_small_window(self, hepth_tiny):
        """With a 1-year window, attention mass sits on papers that are
        being cited now, not on long-dead ones."""
        vector = attention_vector(hepth_tiny, 1.0)
        ages = hepth_tiny.ages()
        old = ages > 8.0
        # The oldest papers should hold a small share of recent attention.
        assert vector[old].sum() < 0.5
