"""Unit tests for the NO-ATT and ATT-ONLY ablations."""

import numpy as np
import pytest

from repro.core.attention import attention_vector
from repro.core.attrank import AttRank
from repro.core.variants import AttentionOnly, NoAttention
from repro.errors import ConfigurationError
from tests.conftest import assert_probability_vector


class TestNoAttention:
    def test_beta_fixed_to_zero(self):
        method = NoAttention(alpha=0.4)
        assert method.beta == 0.0
        assert method.gamma == pytest.approx(0.6)

    def test_name(self):
        assert NoAttention().name == "NO-ATT"

    def test_explicit_nonzero_beta_rejected(self):
        with pytest.raises(ConfigurationError, match="fixes beta"):
            NoAttention(alpha=0.3, beta=0.2)

    def test_grid_style_construction(self):
        # The tuning grids pass beta=0 and gamma explicitly.
        method = NoAttention(alpha=0.3, beta=0.0, gamma=0.7)
        assert method.gamma == pytest.approx(0.7)

    def test_matches_attrank_beta0(self, hepth_tiny):
        ablation = NoAttention(alpha=0.4, decay_rate=-0.5)
        full = AttRank(alpha=0.4, beta=0.0, gamma=0.6, decay_rate=-0.5)
        assert np.allclose(
            ablation.scores(hepth_tiny), full.scores(hepth_tiny), atol=1e-10
        )

    def test_scores_ignore_attention_window(self, hepth_tiny):
        a = NoAttention(alpha=0.4, attention_window=1, decay_rate=-0.5)
        b = NoAttention(alpha=0.4, attention_window=5, decay_rate=-0.5)
        assert np.allclose(
            a.scores(hepth_tiny), b.scores(hepth_tiny), atol=1e-10
        )


class TestAttentionOnly:
    def test_fixed_coefficients(self):
        method = AttentionOnly(attention_window=2)
        assert (method.alpha, method.beta, method.gamma) == (0.0, 1.0, 0.0)

    def test_name(self):
        assert AttentionOnly().name == "ATT-ONLY"

    def test_non_canonical_coefficients_rejected(self):
        with pytest.raises(ConfigurationError, match="fixes"):
            AttentionOnly(alpha=0.1, beta=0.9, gamma=0.0)

    def test_score_is_exactly_the_attention_vector(self, hepth_tiny):
        method = AttentionOnly(attention_window=3)
        scores = method.scores(hepth_tiny)
        assert np.allclose(scores, attention_vector(hepth_tiny, 3.0))

    def test_probability_vector(self, toy):
        assert_probability_vector(AttentionOnly(attention_window=3).scores(toy))

    def test_no_iteration_needed(self, toy):
        method = AttentionOnly(attention_window=3)
        method.scores(toy)
        assert method.last_convergence is None


class TestAblationOrdering:
    def test_attention_matters_on_synthetic_data(self, hepth_split):
        """The paper's central finding, in miniature: ranking quality
        drops when attention is removed entirely."""
        from repro.eval.metrics import spearman_rho

        sti = hepth_split.sti
        network = hepth_split.current
        full = AttRank(
            alpha=0.2, beta=0.5, gamma=0.3, attention_window=2,
            decay_rate=-0.5,
        )
        no_att = NoAttention(alpha=0.2, decay_rate=-0.5)
        rho_full = spearman_rho(full.scores(network), sti)
        rho_no_att = spearman_rho(no_att.scores(network), sti)
        assert rho_full > rho_no_att
