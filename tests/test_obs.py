"""Unit tests for repro.obs: registry, logging, tracing, expfmt."""

from __future__ import annotations

import io
import json
import logging as _logging
import math
import random

import pytest

from expfmt import ExpositionError, parse_exposition
from repro.errors import ConfigurationError
from repro.obs.logging import (
    JsonLinesFormatter,
    bind_request_id,
    configure_logging,
    current_request_id,
    get_logger,
    new_request_id,
    request_id_var,
    reset_logging,
)
from repro.obs.registry import (
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    counter_family,
    cumulative_buckets,
    gauge_family,
    geometric_bounds,
    get_registry,
    quantile_from_buckets,
    render_families,
)
from repro.obs.trace import (
    TraceCollector,
    chrome_trace,
    disable_tracing,
    enable_tracing,
    get_collector,
    span,
    start_trace,
    tracing_enabled,
)


@pytest.fixture(autouse=True)
def _clean_obs_state():
    yield
    disable_tracing()
    reset_logging()


# ----------------------------------------------------------------------
# Bucket math
# ----------------------------------------------------------------------
def test_geometric_bounds_shape():
    bounds = geometric_bounds(1e-3, 1.0, per_decade=10)
    assert bounds[0] == 1e-3
    assert bounds[-1] == 1.0
    assert list(bounds) == sorted(bounds)
    # Ten buckets per decade, three decades, plus the closing bound.
    assert len(bounds) == 31
    assert bounds[1] / bounds[0] == pytest.approx(10 ** 0.1)


def test_quantile_from_buckets_empty():
    assert quantile_from_buckets((1.0, 2.0), (0, 0, 0), 0, 0.0, 0.5) == 0.0


def test_quantile_from_buckets_interpolates_within_bucket():
    # 100 observations uniform in [0, 1): all land in the single
    # [0, 1] bucket, so the interpolated median must sit near 0.5 —
    # the old upper-bound rule would report 1.0.
    bounds = (1.0, 2.0)
    counts = (100, 0, 0)
    median = quantile_from_buckets(bounds, counts, 100, 0.99, 0.5)
    assert median == pytest.approx(0.5, abs=0.01)


def test_quantile_from_buckets_overflow_reports_max():
    bounds = (1.0,)
    counts = (0, 5)  # everything beyond the last bound
    assert quantile_from_buckets(bounds, counts, 5, 7.5, 0.5) == 7.5


def test_quantile_from_buckets_clamped_to_observed_max():
    bounds = (1.0, 2.0)
    counts = (0, 3, 0)
    # Interpolation would land in (1, 2], but the slowest observation
    # was 1.2s — no quantile may exceed it.
    assert quantile_from_buckets(bounds, counts, 3, 1.2, 0.99) == 1.2


def test_cumulative_buckets_ends_at_inf():
    pairs = cumulative_buckets((0.1, 1.0), (3, 4, 2))
    assert pairs == (("0.1", 3), ("1", 7), ("+Inf", 9))


# ----------------------------------------------------------------------
# Instruments
# ----------------------------------------------------------------------
def test_counter_inc_and_value():
    counter = Counter("t_total", "help")
    assert counter.value() == 0.0
    counter.inc()
    counter.inc(2.5)
    assert counter.value() == 3.5


def test_counter_rejects_decrease():
    counter = Counter("t_total", "help")
    with pytest.raises(ConfigurationError):
        counter.inc(-1)


def test_counter_labels_enforced():
    counter = Counter("t_total", "help", ["kind"])
    counter.inc(kind="a")
    counter.inc(3, kind="b")
    assert counter.value(kind="a") == 1.0
    assert counter.value(kind="b") == 3.0
    with pytest.raises(ConfigurationError):
        counter.inc()  # missing label
    with pytest.raises(ConfigurationError):
        counter.inc(kind="a", extra="x")  # unknown label


def test_invalid_metric_and_label_names_rejected():
    with pytest.raises(ConfigurationError):
        Counter("0bad", "help")
    with pytest.raises(ConfigurationError):
        Counter("ok_total", "help", ["le"])  # reserved for buckets
    with pytest.raises(ConfigurationError):
        Counter("ok_total", "help", ["bad-dash"])


def test_gauge_set_inc():
    gauge = Gauge("t_gauge", "help")
    gauge.set(4)
    gauge.inc(-1.5)
    assert gauge.value() == 2.5


def test_histogram_rejects_bad_bounds():
    with pytest.raises(ConfigurationError):
        Histogram("t_seconds", "help", bounds=())
    with pytest.raises(ConfigurationError):
        Histogram("t_seconds", "help", bounds=(2.0, 1.0))
    with pytest.raises(ConfigurationError):
        Histogram("t_seconds", "help", bounds=(1.0, 1.0))


def test_histogram_observe_quantile_snapshot():
    hist = Histogram("t_seconds", "help", bounds=(1.0, 2.0, 4.0))
    for value in (0.5, 0.6, 1.5, 3.0, 10.0):
        hist.observe(value)
    snap = hist.snapshot()
    assert snap["count"] == 5
    assert snap["sum"] == pytest.approx(15.6)
    assert snap["max"] == 10.0
    assert 0.0 < snap["p50"] <= 2.0
    assert snap["p99"] == 10.0  # overflow bucket reports max
    assert hist.quantile(0.5) == snap["p50"]


def test_histogram_empty_snapshot():
    hist = Histogram("t_seconds", "help", bounds=(1.0,))
    assert hist.snapshot() == {
        "count": 0, "sum": 0.0, "mean": 0.0,
        "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0,
    }
    assert hist.quantile(0.5) == 0.0


def test_histogram_labelled_series_isolated():
    hist = Histogram("t_seconds", "help", ["shard"], bounds=(1.0, 2.0))
    hist.observe(0.5, shard="0")
    hist.observe(1.5, shard="1")
    assert hist.snapshot(shard="0")["count"] == 1
    assert hist.snapshot(shard="1")["count"] == 1
    assert hist.snapshot(shard="0")["max"] == 0.5


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_get_or_create_returns_same_object():
    registry = MetricsRegistry()
    first = registry.counter("a_total", "help")
    second = registry.counter("a_total", "other help ignored")
    assert first is second


def test_registry_conflicting_kind_raises():
    registry = MetricsRegistry()
    registry.counter("a_total", "help")
    with pytest.raises(ConfigurationError):
        registry.gauge("a_total", "help")


def test_registry_conflicting_labels_raise():
    registry = MetricsRegistry()
    registry.counter("a_total", "help", ["x"])
    with pytest.raises(ConfigurationError):
        registry.counter("a_total", "help", ["y"])


def test_registry_reset_keeps_handles_live():
    registry = MetricsRegistry()
    counter = registry.counter("a_total", "help")
    counter.inc(5)
    registry.reset()
    assert counter.value() == 0.0
    counter.inc()  # the same handle keeps recording
    assert registry.counter("a_total", "help").value() == 1.0


def test_registry_collectors_contribute_families():
    registry = MetricsRegistry()
    registry.register_collector(
        lambda: [gauge_family("extra_gauge", "help", 7)]
    )
    names = {family.name for family in registry.collect()}
    assert "extra_gauge" in names


def test_registry_render_json_document():
    registry = MetricsRegistry()
    registry.counter("a_total", "help", ["kind"]).inc(2, kind="x")
    document = registry.render_json()
    assert document["a_total"]["kind"] == "counter"
    samples = document["a_total"]["samples"]
    assert samples == [{"suffix": "", "labels": {"kind": "x"}, "value": 2.0}]


def test_global_registry_identity():
    assert get_registry() is REGISTRY


# ----------------------------------------------------------------------
# Exposition rendering — validated by the strict parser
# ----------------------------------------------------------------------
def test_render_prometheus_parses_strictly():
    registry = MetricsRegistry()
    registry.counter("req_total", "Requests.", ["endpoint"]).inc(
        3, endpoint="query"
    )
    registry.gauge("active", "In flight.").set(2)
    hist = registry.histogram(
        "latency_seconds", "Latency.", bounds=(0.1, 1.0)
    )
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)
    families = parse_exposition(registry.render_prometheus())
    assert families["req_total"].kind == "counter"
    assert families["req_total"].values()[(("endpoint", "query"),)] == 3.0
    assert families["active"].values()[()] == 2.0
    latency = families["latency_seconds"]
    assert latency.kind == "histogram"
    assert latency.values("_count")[()] == 3.0
    buckets = latency.values("_bucket")
    assert buckets[(("le", "+Inf"),)] == 3.0
    assert buckets[(("le", "0.1"),)] == 1.0


def test_render_families_escapes_labels_and_help():
    family = counter_family(
        'a_total', 'help with "quotes"\nand newline',
        {(("k", 'v"\n\\'),): 1.0},
    )
    text = render_families([family])
    assert '\\"' in text
    assert "\\n" in text
    parsed = parse_exposition(text)
    assert parsed["a_total"].values()[(("k", 'v"\n\\'),)] == 1.0


def test_render_families_sorted_and_terminated():
    text = render_families(
        [gauge_family("b_gauge", "h", 1), gauge_family("a_gauge", "h", 2)]
    )
    assert text.index("a_gauge") < text.index("b_gauge")
    assert text.endswith("\n")
    assert render_families([]) == ""


def test_expfmt_rejects_malformed_input():
    with pytest.raises(ExpositionError):
        parse_exposition("not a metric line\n")
    with pytest.raises(ExpositionError):
        parse_exposition("# TYPE m bogus_kind\n")
    with pytest.raises(ExpositionError):
        # Sample before any TYPE declaration.
        parse_exposition("orphan_total 1\n")
    with pytest.raises(ExpositionError):
        # Histogram bucket series must end at +Inf.
        parse_exposition(
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            "h_sum 1\n"
            "h_count 1\n"
        )
    with pytest.raises(ExpositionError):
        # +Inf bucket must equal _count.
        parse_exposition(
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 1\n'
            'h_bucket{le="+Inf"} 2\n'
            "h_sum 1\n"
            "h_count 3\n"
        )


# ----------------------------------------------------------------------
# Logging
# ----------------------------------------------------------------------
def test_new_request_id_format():
    rid = new_request_id()
    assert len(rid) == 16
    int(rid, 16)  # hex


def test_bind_request_id_nested_and_restored():
    assert current_request_id() is None
    with bind_request_id("outer"):
        assert current_request_id() == "outer"
        with bind_request_id("inner"):
            assert current_request_id() == "inner"
        assert current_request_id() == "outer"
    assert current_request_id() is None


def test_configure_logging_emits_json_lines():
    sink = io.StringIO()
    configure_logging("INFO", json=True, stream=sink)
    logger = get_logger("testmod")
    with bind_request_id("rid-1"):
        logger.info("hello", extra={"endpoint": "query", "ms": 1.5})
    line = sink.getvalue().strip()
    entry = json.loads(line)
    assert entry["level"] == "INFO"
    assert entry["logger"] == "repro.testmod"
    assert entry["message"] == "hello"
    assert entry["request_id"] == "rid-1"
    assert entry["endpoint"] == "query"
    assert entry["ms"] == 1.5
    assert entry["ts"].endswith("+00:00")


def test_configure_logging_omits_unbound_request_id():
    sink = io.StringIO()
    configure_logging("INFO", json=True, stream=sink)
    get_logger("testmod").info("plain")
    entry = json.loads(sink.getvalue().strip())
    assert "request_id" not in entry


def test_configure_logging_idempotent_handler():
    sink = io.StringIO()
    configure_logging("INFO", json=True, stream=sink)
    configure_logging("INFO", json=True, stream=sink)
    get_logger("testmod").info("once")
    assert len(sink.getvalue().strip().splitlines()) == 1


def test_configure_logging_text_format():
    sink = io.StringIO()
    configure_logging("INFO", json=False, stream=sink)
    with bind_request_id("rid-2"):
        get_logger("testmod").info("hello", extra={"k": "v"})
    line = sink.getvalue()
    assert "repro.testmod" in line
    assert "request_id=rid-2" in line
    assert "k=v" in line


def test_configure_logging_level_from_env(monkeypatch):
    sink = io.StringIO()
    monkeypatch.setenv("REPRO_LOG_LEVEL", "WARNING")
    configure_logging(stream=sink)
    get_logger("testmod").info("dropped")
    get_logger("testmod").warning("kept")
    lines = sink.getvalue().strip().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["message"] == "kept"


def test_configure_logging_unknown_level():
    with pytest.raises(ConfigurationError):
        configure_logging("NOT_A_LEVEL", stream=io.StringIO())


def test_json_formatter_exception_and_unserialisable_extra():
    formatter = JsonLinesFormatter()
    try:
        raise ValueError("boom")
    except ValueError:
        import sys

        record = _logging.LogRecord(
            "repro.t", _logging.ERROR, __file__, 1, "failed",
            None, sys.exc_info(),
        )
    record.payload = object()  # not JSON-serialisable
    entry = json.loads(formatter.format(record))
    assert "ValueError: boom" in entry["exc"]
    assert entry["payload"].startswith("<object object")


def test_reset_logging_restores_propagation():
    configure_logging("INFO", stream=io.StringIO())
    logger = _logging.getLogger("repro")
    assert logger.propagate is False
    reset_logging()
    assert logger.propagate is True
    assert not [
        h for h in logger.handlers
        if getattr(h, "_repro_obs_handler", False)
    ]


def test_logging_capture_flags_toggled_and_restored():
    """The stdlib optimization knobs apply only while configured."""
    assert _logging.logThreads is True
    configure_logging("INFO", stream=io.StringIO())
    assert _logging.logThreads is False
    assert _logging.logProcesses is False
    assert _logging.logMultiprocessing is False
    assert _logging._srcfile is None
    reset_logging()
    assert _logging.logThreads is True
    assert _logging.logProcesses is True
    assert _logging.logMultiprocessing is True
    assert _logging._srcfile is not None


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
def test_span_is_noop_outside_trace():
    with span("orphan") as sp:
        assert sp is None


def test_start_trace_is_noop_without_collector():
    assert not tracing_enabled()
    with start_trace("gateway.request") as root:
        assert root is None


def test_trace_tree_records_nested_spans():
    collector = enable_tracing()
    assert tracing_enabled()
    assert get_collector() is collector
    with start_trace("gateway.request", request_id="rid-3", endpoint="q") as root:
        root.set(status=200)
        with span("engine.execute", queries=2) as sp:
            sp.set(version=7)
            with span("engine.shard", shard=0):
                pass
    traces = collector.recent()
    assert len(traces) == 1
    trace = traces[0]
    assert trace["name"] == "gateway.request"
    assert trace["request_id"] == "rid-3"
    assert trace["attrs"] == {"endpoint": "q", "status": 200}
    assert trace["start_unix"] > 0
    assert len(trace["trace_id"]) == 16
    (execute,) = trace["spans"]
    assert execute["name"] == "engine.execute"
    assert execute["attrs"] == {"queries": 2, "version": 7}
    (shard,) = execute["spans"]
    assert shard["name"] == "engine.shard"
    assert shard["start_ms"] >= execute["start_ms"]
    assert trace["duration_ms"] >= execute["duration_ms"]


def test_collector_ring_buffer_and_totals():
    collector = enable_tracing(capacity=2)
    for index in range(3):
        with start_trace(f"t{index}"):
            pass
    assert collector.recorded_total == 3
    names = [trace["name"] for trace in collector.recent()]
    assert names == ["t2", "t1"]  # newest first, oldest evicted
    assert [t["name"] for t in collector.recent(limit=1)] == ["t2"]
    collector.clear()
    assert collector.recent() == []
    assert collector.recorded_total == 3


def test_collector_capacity_validated():
    with pytest.raises(ConfigurationError):
        TraceCollector(capacity=0)


def test_collector_sample_validated():
    for bad in (-0.1, 1.1):
        with pytest.raises(ConfigurationError):
            TraceCollector(sample=bad)


def test_sampling_zero_records_nothing():
    collector = enable_tracing(sample=0.0)
    for _ in range(20):
        with start_trace("t") as root:
            assert root is None  # unsampled → the shared no-op
    assert collector.recorded_total == 0
    assert collector.recent() == []


def test_sampling_one_records_everything():
    collector = enable_tracing(sample=1.0)
    for _ in range(20):
        with start_trace("t"):
            pass
    assert collector.recorded_total == 20


def test_sampling_fraction_records_a_subset():
    collector = enable_tracing(sample=0.5)
    assert collector.sample == 0.5
    random.seed(1234)  # the sampler draws from the module-level rng
    for _ in range(400):
        with start_trace("t"):
            pass
    # Binomial(400, 0.5): the window below is ~10 sigma wide.
    assert 100 < collector.recorded_total < 300
    # Sampled-out requests keep spans on the no-op path entirely.
    for trace in collector.recent():
        assert trace["name"] == "t"


def test_disable_tracing_restores_noop():
    enable_tracing()
    disable_tracing()
    assert not tracing_enabled()
    assert get_collector() is None
    with start_trace("t") as root:
        assert root is None


def test_chrome_trace_conversion():
    collector = enable_tracing()
    with start_trace("gateway.request", request_id="rid-4"):
        with span("engine.execute"):
            pass
    document = chrome_trace(collector.recent())
    events = document["traceEvents"]
    assert document["displayTimeUnit"] == "ms"
    assert [event["name"] for event in events] == [
        "gateway.request", "engine.execute",
    ]
    root, child = events
    assert root["ph"] == "X"
    assert root["args"]["request_id"] == "rid-4"
    assert len(root["args"]["trace_id"]) == 16
    assert child["tid"] == root["tid"]
    # Timestamps anchor at the trace's wall-clock start, in µs.
    trace = collector.recent()[0]
    assert root["ts"] == pytest.approx(trace["start_unix"] * 1e6)
    assert child["ts"] >= root["ts"]
    assert math.isfinite(child["dur"])


def test_chrome_trace_assigns_tids_per_trace():
    collector = enable_tracing()
    with start_trace("a"):
        pass
    with start_trace("b"):
        pass
    events = chrome_trace(collector.recent())["traceEvents"]
    assert {event["tid"] for event in events} == {0, 1}
