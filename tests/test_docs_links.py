"""Validate internal markdown links and anchors in the documentation.

Docs drift shows up first as broken cross-references: a renamed file,
a reworded heading, a moved section.  This module resolves every
``[text](target)`` link in the documentation set:

- relative file targets must exist on disk (resolved against the
  linking file's directory);
- ``#anchor`` fragments — bare or attached to a file target — must
  match a heading in the target document, using GitHub's slug rules
  (lowercase, punctuation stripped, spaces to hyphens, duplicate slugs
  numbered);
- absolute URLs (``http://``, ``https://``, ``mailto:``) are out of
  scope — CI must not depend on the network.

CI runs this in the "docs" job next to the executable-example check.
"""

from __future__ import annotations

import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Every markdown file whose links must resolve.
DOCUMENTATION_FILES = (
    "README.md",
    os.path.join("docs", "API.md"),
    os.path.join("docs", "ARCHITECTURE.md"),
    os.path.join("docs", "OBSERVABILITY.md"),
    os.path.join("docs", "RELIABILITY.md"),
    os.path.join("docs", "SOLVER.md"),
)

_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^(#{1,6})\s+(.*?)\s*$")
_FENCE = re.compile(r"^[ ]*```")
_EXTERNAL_SCHEMES = ("http://", "https://", "mailto:")


def _strip_fenced_code(text: str) -> str:
    """Drop fenced code blocks; links inside them are examples."""
    kept: list[str] = []
    in_fence = False
    for line in text.splitlines():
        if _FENCE.match(line):
            in_fence = not in_fence
            continue
        if not in_fence:
            kept.append(line)
    return "\n".join(kept)


def extract_links(text: str) -> list[str]:
    """All link targets outside fenced code blocks, in order."""
    return _LINK.findall(_strip_fenced_code(text))


def github_slug(heading: str, seen: dict[str, int]) -> str:
    """GitHub's anchor slug for a heading, numbering duplicates."""
    # Inline code and emphasis markers do not survive into the slug.
    text = re.sub(r"[`*_]", "", heading.strip().lower())
    text = re.sub(r"[^\w\- ]", "", text)
    slug = text.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def heading_slugs(text: str) -> set[str]:
    """The set of anchor slugs a markdown document exposes."""
    seen: dict[str, int] = {}
    slugs: set[str] = set()
    for line in _strip_fenced_code(text).splitlines():
        match = _HEADING.match(line)
        if match:
            slugs.add(github_slug(match.group(2), seen))
    return slugs


def _read(path: str) -> str:
    with open(path, encoding="utf-8") as handle:
        return handle.read()


@pytest.mark.parametrize(
    "relative_path",
    DOCUMENTATION_FILES,
    ids=[path.replace(os.sep, "/") for path in DOCUMENTATION_FILES],
)
def test_internal_links_resolve(relative_path):
    source_path = os.path.join(REPO_ROOT, relative_path)
    source_dir = os.path.dirname(source_path)
    text = _read(source_path)
    problems: list[str] = []
    for target in extract_links(text):
        if target.startswith(_EXTERNAL_SCHEMES):
            continue
        file_part, _, anchor = target.partition("#")
        if file_part:
            resolved = os.path.normpath(
                os.path.join(source_dir, file_part)
            )
            if not os.path.exists(resolved):
                problems.append(f"{target}: no such file {file_part}")
                continue
            anchor_host = resolved
        else:
            anchor_host = source_path
        if anchor:
            if not anchor_host.endswith(".md"):
                problems.append(
                    f"{target}: anchor into non-markdown target"
                )
                continue
            if anchor not in heading_slugs(_read(anchor_host)):
                problems.append(f"{target}: no heading for #{anchor}")
    assert not problems, (
        f"{relative_path} has broken internal links:\n  "
        + "\n  ".join(problems)
    )


def test_docs_cross_reference_each_other():
    """The doc set must stay connected: SOLVER.md is reachable from
    README and API.md, and every doc file is linked from somewhere."""
    incoming: dict[str, int] = {
        path: 0 for path in DOCUMENTATION_FILES
    }
    for relative_path in DOCUMENTATION_FILES:
        source_path = os.path.join(REPO_ROOT, relative_path)
        source_dir = os.path.dirname(source_path)
        for target in extract_links(_read(source_path)):
            if target.startswith(_EXTERNAL_SCHEMES):
                continue
            file_part = target.partition("#")[0]
            if not file_part:
                continue
            resolved = os.path.relpath(
                os.path.normpath(os.path.join(source_dir, file_part)),
                REPO_ROOT,
            )
            if resolved in incoming and resolved != relative_path:
                incoming[resolved] += 1
    orphans = [path for path, count in incoming.items()
               if count == 0 and path != "README.md"]
    assert not orphans, f"documentation files never linked: {orphans}"


class TestSlugRules:
    def test_basic_lowercase_hyphenation(self):
        assert github_slug("Request ids", {}) == "request-ids"

    def test_punctuation_stripped(self):
        seen: dict[str, int] = {}
        assert (
            github_slug("`repro.eval` — the paper's protocol", seen)
            == "reproeval--the-papers-protocol"
        )

    def test_duplicates_numbered(self):
        seen: dict[str, int] = {}
        assert github_slug("Metrics", seen) == "metrics"
        assert github_slug("Metrics", seen) == "metrics-1"
