"""Tests for the micro-batched replay path and its equivalence claims."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, StreamError
from repro.stream import (
    EventLog,
    PaperEvent,
    StreamIngestor,
    batch_compute,
    network_from_log,
)

pytestmark = pytest.mark.stream

#: AttRank with a pinned decay rate: the default fit needs a mature
#: citation-age distribution, which tiny bootstrap snapshots lack.
AR_PARAMS = {"AR": {"decay_rate": -0.6}}
METHODS = ("AR", "PR", "CC")


@pytest.fixture(scope="module")
def hepth_log(hepth_tiny) -> EventLog:
    return EventLog.from_network(hepth_tiny)


def _assert_scores_equal(index_a, index_b, labels=METHODS):
    for label in labels:
        np.testing.assert_array_equal(
            index_a.scores(label), index_b.scores(label), err_msg=label
        )


class TestBatching:
    def test_batches_never_split_groups(self, hepth_log):
        ingestor = StreamIngestor(
            hepth_log, ("CC",), batch_size=7, bootstrap_size=40
        )
        while not ingestor.exhausted:
            report = ingestor.step()
            if not ingestor.exhausted:
                # The next batch starts on a paper event.
                assert isinstance(
                    hepth_log[report.offset_end], PaperEvent
                )
            assert report.n_events >= 1

    def test_batch_size_floor(self, hepth_log):
        ingestor = StreamIngestor(
            hepth_log, ("CC",), batch_size=50, bootstrap_size=50
        )
        reports = []
        while not ingestor.exhausted:
            reports.append(ingestor.step())
        # Every batch except possibly the final one reaches the floor.
        for report in reports[:-1]:
            assert report.n_events >= 50

    def test_watermark_policy_bounds_batch_span(self, hepth_log):
        ingestor = StreamIngestor(
            hepth_log,
            ("CC",),
            batch_size=10_000,  # size never triggers
            bootstrap_size=1,
            watermark_years=1.0,
        )
        while not ingestor.exhausted:
            report = ingestor.step()
            events = hepth_log.events[
                report.offset_start:report.offset_end
            ]
            span = events[-1].time - events[0].time
            # The batch closes at the first group boundary beyond the
            # watermark, so it never runs a whole extra year past it.
            assert span < 2.0

    def test_bootstrap_size_controls_first_batch(self, hepth_log):
        ingestor = StreamIngestor(
            hepth_log, ("CC",), batch_size=4, bootstrap_size=100
        )
        first = ingestor.step()
        assert first.bootstrap
        assert first.n_events >= 100
        second = ingestor.step()
        assert not second.bootstrap
        assert second.n_events < 100

    def test_invalid_configuration(self, hepth_log):
        with pytest.raises(ConfigurationError, match="batch_size"):
            StreamIngestor(hepth_log, ("CC",), batch_size=0)
        with pytest.raises(ConfigurationError, match="bootstrap_size"):
            StreamIngestor(hepth_log, ("CC",), bootstrap_size=0)
        with pytest.raises(ConfigurationError, match="watermark"):
            StreamIngestor(hepth_log, ("CC",), watermark_years=0.0)
        with pytest.raises(ConfigurationError, match="method"):
            StreamIngestor(hepth_log, ())
        with pytest.raises(StreamError, match="empty"):
            StreamIngestor(EventLog([]), ("CC",))


class TestReplay:
    def test_pre_bootstrap_accessors_raise(self, hepth_log):
        ingestor = StreamIngestor(hepth_log, ("CC",))
        with pytest.raises(StreamError, match="bootstrap"):
            ingestor.index
        with pytest.raises(StreamError, match="bootstrap"):
            ingestor.service

    def test_step_past_end_raises(self, toy):
        ingestor = StreamIngestor(
            EventLog.from_network(toy), ("CC",), batch_size=1000
        )
        ingestor.step()
        assert ingestor.exhausted
        with pytest.raises(StreamError, match="exhausted"):
            ingestor.step()

    def test_replay_report_accounting(self, hepth_log):
        ingestor = StreamIngestor(
            hepth_log, ("CC",), batch_size=200, bootstrap_size=200
        )
        report = ingestor.replay()
        assert report.exhausted
        assert report.n_events == len(hepth_log)
        assert report.n_batches == ingestor.batches_applied
        assert report.n_papers == hepth_log.n_papers
        assert report.events_per_second > 0
        # Version: bootstrap leaves v0, every delta bumps by one.
        assert report.version == report.n_batches - 1

    def test_serves_queries_between_batches(self, hepth_log):
        ingestor = StreamIngestor(
            hepth_log,
            METHODS,
            batch_size=256,
            bootstrap_size=512,
            method_params=AR_PARAMS,
            shards=3,
        )
        ingestor.step()
        seen_versions = []
        while not ingestor.exhausted:
            ingestor.step()
            page = ingestor.service.top_k("AR", k=5)
            assert len(page.entries) == 5
            assert page.version == ingestor.index.version
            seen_versions.append(page.version)
        assert seen_versions == sorted(seen_versions)

    def test_replay_equals_batch_compute_after_finalize(self, hepth_log):
        cold = batch_compute(hepth_log, METHODS, method_params=AR_PARAMS)
        ingestor = StreamIngestor(
            hepth_log,
            METHODS,
            batch_size=128,
            bootstrap_size=512,
            method_params=AR_PARAMS,
        )
        ingestor.replay()
        # Warm replay state agrees to solver tolerance...
        for label in METHODS:
            np.testing.assert_allclose(
                ingestor.index.scores(label),
                cold.scores(label),
                atol=1e-9,
            )
        # ...and the canonical finalize closes the gap bit-exactly.
        ingestor.finalize()
        _assert_scores_equal(ingestor.index, cold)
        final = network_from_log(hepth_log)
        assert ingestor.index.network.paper_ids == final.paper_ids

    def test_replay_is_deterministic(self, hepth_log):
        def run():
            ingestor = StreamIngestor(
                hepth_log,
                METHODS,
                batch_size=64,
                bootstrap_size=512,
                method_params=AR_PARAMS,
            )
            ingestor.replay()
            return ingestor

        _assert_scores_equal(run().index, run().index)

    def test_service_fresh_after_finalize(self, hepth_log):
        ingestor = StreamIngestor(
            hepth_log,
            ("PR", "CC"),
            batch_size=512,
            bootstrap_size=512,
        )
        ingestor.replay()
        stale = ingestor.service.top_k("PR", k=3)
        ingestor.finalize()
        fresh = ingestor.service.top_k("PR", k=3)
        # The finalize bumped the version out of band; the service must
        # notice and never serve the stale page object again.
        assert fresh.version == ingestor.index.version
        assert fresh.version == stale.version + 1

    def test_missing_reference_policies(self):
        from repro.stream import CitationEvent

        events = [
            PaperEvent(time=2000.0, paper_id="a"),
            PaperEvent(time=2001.0, paper_id="b"),
            CitationEvent(time=2001.0, citing="b", cited="a"),
            PaperEvent(time=2002.0, paper_id="c"),
            CitationEvent(time=2002.0, citing="c", cited="ghost"),
        ]
        log = EventLog(events)
        skipping = StreamIngestor(
            log, ("CC",), batch_size=2, bootstrap_size=3
        )
        skipping.replay()
        assert skipping.index.network.n_citations == 1

        from repro.errors import GraphError

        erroring = StreamIngestor(
            log,
            ("CC",),
            batch_size=2,
            bootstrap_size=3,
            missing_references="error",
        )
        with pytest.raises(GraphError, match="ghost"):
            erroring.replay()


@pytest.mark.slow
class TestReplayMatrix:
    """The acceptance matrix: batch sizes x shard counts, with resume.

    Every cell replays the full log with one mid-replay
    checkpoint/resume and must land bit-identical to the cold batch
    compute after finalize.
    """

    @pytest.mark.parametrize("batch_size", [1, 16, 256])
    @pytest.mark.parametrize("shards", [1, 4])
    def test_replay_matrix(self, hepth_log, tmp_path, batch_size, shards):
        cold = batch_compute(hepth_log, METHODS, method_params=AR_PARAMS)
        ingestor = StreamIngestor(
            hepth_log,
            METHODS,
            batch_size=batch_size,
            bootstrap_size=512,
            shards=shards,
            method_params=AR_PARAMS,
        )
        ingestor.replay(max_batches=3)
        scratch = str(tmp_path / f"ckpt-{batch_size}-{shards}")
        ingestor.checkpoint(scratch)
        resumed = StreamIngestor.resume(scratch, hepth_log)
        report = resumed.replay()
        assert report.exhausted
        resumed.finalize()
        _assert_scores_equal(resumed.index, cold)
        # The served ranking agrees with the canonical scores too.
        top = resumed.service.top_k("AR", k=10)
        expected = np.argsort(
            -cold.scores("AR"), kind="stable"
        )[:10]
        assert [
            resumed.index.network.index_of(row.paper_id)
            for row in top.entries
        ] == [int(i) for i in expected]
