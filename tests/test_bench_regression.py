"""Tests for the benchmark-regression gate (repro.bench.regression)."""

import json

import pytest

from repro.bench.regression import (
    compare_directories,
    compare_results,
    load_bench_results,
)
from repro.cli import main
from repro.errors import ConfigurationError, DataFormatError


def _doc(scenario, elapsed, *, identical=None, config=None):
    payload = {}
    if identical is not None:
        payload["identical_rankings"] = identical
    return {
        "schema_version": 1,
        "scenario": scenario,
        "elapsed_seconds": elapsed,
        "config": config
        or {"jobs": 2, "size": "tiny", "repeats": 1, "warmup": 0,
            "smoke": True, "seed": 7},
        "payload": payload,
    }


def _write(directory, documents):
    directory.mkdir(exist_ok=True)
    for document in documents:
        path = directory / f"BENCH_{document['scenario']}.json"
        path.write_text(json.dumps(document))
    return str(directory)


class TestCompareResults:
    def test_ok_within_tolerance(self):
        report = compare_results(
            {"split": _doc("split", 1.0)},
            {"split": _doc("split", 1.4)},
            tolerance=1.5,
        )
        assert report.ok
        (row,) = report.rows
        assert row.status == "ok"
        assert row.ratio == pytest.approx(1.4)

    def test_slowdown_beyond_tolerance_fails(self):
        report = compare_results(
            {"split": _doc("split", 1.0)},
            {"split": _doc("split", 1.6)},
            tolerance=1.5,
        )
        assert not report.ok
        assert report.failures[0].status == "regression"

    def test_broken_rankings_fail_even_when_faster(self):
        report = compare_results(
            {"tuning": _doc("tuning", 2.0, identical=True)},
            {"tuning": _doc("tuning", 0.5, identical=False)},
        )
        assert not report.ok
        assert report.failures[0].status == "broken"

    def test_new_and_removed_scenarios_pass(self):
        report = compare_results(
            {"old": _doc("old", 1.0)},
            {"new": _doc("new", 1.0, identical=True)},
        )
        assert report.ok
        statuses = {row.scenario: row.status for row in report.rows}
        assert statuses == {"old": "removed", "new": "new"}

    def test_config_change_skips_time_comparison(self):
        fast = {"jobs": 2, "size": "tiny", "repeats": 1, "warmup": 0,
                "smoke": True, "seed": 7}
        big = dict(fast, size="large")
        report = compare_results(
            {"split": _doc("split", 0.1, config=fast)},
            {"split": _doc("split", 60.0, config=big)},
        )
        assert report.ok
        assert report.rows[0].status == "config-changed"
        assert report.rows[0].ratio is None

    def test_bad_tolerance(self):
        with pytest.raises(ConfigurationError, match="tolerance"):
            compare_results({}, {}, tolerance=1.0)

    def test_markdown_mentions_failures(self):
        report = compare_results(
            {"split": _doc("split", 1.0)},
            {"split": _doc("split", 9.0)},
        )
        markdown = report.to_markdown()
        assert "FAIL" in markdown
        assert "| split |" in markdown
        assert "**regression**" in markdown


class TestLoadResults:
    def test_missing_directory_is_empty(self, tmp_path):
        assert load_bench_results(str(tmp_path / "nope")) == {}

    def test_loads_by_scenario(self, tmp_path):
        directory = _write(
            tmp_path / "artifacts",
            [_doc("split", 1.0), _doc("tuning", 2.0)],
        )
        results = load_bench_results(directory)
        assert set(results) == {"split", "tuning"}

    def test_invalid_json_rejected(self, tmp_path):
        directory = tmp_path / "artifacts"
        directory.mkdir()
        (directory / "BENCH_bad.json").write_text("{nope")
        with pytest.raises(DataFormatError, match="invalid JSON"):
            load_bench_results(str(directory))

    def test_non_bench_document_rejected(self, tmp_path):
        directory = tmp_path / "artifacts"
        directory.mkdir()
        (directory / "BENCH_odd.json").write_text('{"hello": 1}')
        with pytest.raises(DataFormatError, match="not a bench result"):
            load_bench_results(str(directory))


class TestBenchDiffCli:
    def test_pass_exit_zero(self, tmp_path, capsys):
        base = _write(tmp_path / "base", [_doc("split", 1.0)])
        head = _write(tmp_path / "head", [_doc("split", 1.1)])
        assert main(["bench-diff", base, head]) == 0
        out = capsys.readouterr().out
        assert "split" in out and "ok" in out

    def test_regression_exit_one(self, tmp_path, capsys):
        base = _write(tmp_path / "base", [_doc("split", 1.0)])
        head = _write(tmp_path / "head", [_doc("split", 2.0)])
        assert main(["bench-diff", base, head, "--tolerance", "1.5"]) == 1
        captured = capsys.readouterr()
        assert "regression" in captured.err

    def test_markdown_flag(self, tmp_path, capsys):
        base = _write(tmp_path / "base", [_doc("split", 1.0)])
        head = _write(tmp_path / "head", [_doc("split", 1.0)])
        assert main(["bench-diff", base, head, "--markdown"]) == 0
        assert "| scenario |" in capsys.readouterr().out

    def test_empty_base_passes(self, tmp_path, capsys):
        """A merge-base predating the harness must not fail the gate."""
        (tmp_path / "base").mkdir()
        head = _write(tmp_path / "head", [_doc("split", 1.0)])
        assert main(["bench-diff", str(tmp_path / "base"), head]) == 0

    def test_compare_directories_end_to_end(self, tmp_path):
        base = _write(tmp_path / "base", [_doc("split", 1.0)])
        head = _write(tmp_path / "head", [_doc("split", 1.2)])
        report = compare_directories(base, head, tolerance=1.5)
        assert report.ok


class TestConfigEvolution:
    def test_shards_mismatch_is_config_changed(self):
        base_config = {"jobs": 2, "size": "tiny", "repeats": 1,
                       "warmup": 0, "smoke": True, "seed": 7, "shards": 2}
        head_config = dict(base_config, shards=8)
        report = compare_results(
            {"serve_batch": _doc("serve_batch", 1.0, config=base_config)},
            {"serve_batch": _doc("serve_batch", 3.0, config=head_config)},
        )
        assert report.ok
        assert report.rows[0].status == "config-changed"

    def test_field_missing_on_base_stays_comparable(self):
        """An older base without the 'shards' field must not mark the
        whole comparison config-changed."""
        old_config = {"jobs": 2, "size": "tiny", "repeats": 1,
                      "warmup": 0, "smoke": True, "seed": 7}
        new_config = dict(old_config, shards=2)
        report = compare_results(
            {"split": _doc("split", 1.0, config=old_config)},
            {"split": _doc("split", 1.1, config=new_config)},
        )
        assert report.rows[0].status == "ok"


class TestLatencyQuantiles:
    """The schema extension: payloads may carry latency quantiles, and
    bench-diff renders them without requiring them."""

    def _doc_with_latency(self, scenario, elapsed, latency):
        document = _doc(scenario, elapsed, identical=True)
        document["payload"]["latency"] = latency
        return document

    def test_head_latency_lands_on_the_row(self):
        latency = {"p50_ms": 1.25, "p95_ms": 4.5, "p99_ms": 9.875}
        report = compare_results(
            {"gateway": _doc("gateway", 1.0)},
            {"gateway": self._doc_with_latency("gateway", 1.1, latency)},
        )
        row = report.rows[0]
        assert row.latency == latency
        assert row.latency_cell() == "1.2/4.5/9.9"
        assert "| 1.2/4.5/9.9 |" in report.to_markdown()
        assert "p50/p95/p99 (ms)" in report.to_markdown()

    def test_scenarios_without_latency_render_dash(self):
        report = compare_results(
            {"split": _doc("split", 1.0)},
            {"split": _doc("split", 1.1)},
        )
        assert report.rows[0].latency is None
        assert report.rows[0].latency_cell() == "-"
        assert report.ok

    def test_malformed_latency_is_tolerated(self):
        report = compare_results(
            {},
            {"gateway": self._doc_with_latency(
                "gateway", 1.0, {"p50_ms": "fast"}
            )},
        )
        assert report.rows[0].latency_cell() == "-"
        assert report.ok

    def test_new_scenario_keeps_its_latency(self):
        latency = {"p50_ms": 2.0, "p95_ms": 5.0, "p99_ms": 6.0}
        report = compare_results(
            {},
            {"gateway": self._doc_with_latency("gateway", 1.0, latency)},
        )
        assert report.rows[0].status == "new"
        assert report.rows[0].latency_cell() == "2.0/5.0/6.0"
