"""Tests of repro.parallel: determinism across jobs, snapshot hoisting.

The engine's contract is that fanning grid points over worker processes
changes *nothing* about the results — same scores (bit-identical), same
chosen hyper-parameters, same sweep order — for any ``--jobs`` value.
These tests pin that contract down for jobs in {1, 2, 4} against the
serial drivers in ``repro.eval``.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, EvaluationError
from repro.eval.experiment import compare_over_ratios
from repro.eval.grids import attrank_grid, ram_grid
from repro.eval.metrics import NDCG, SpearmanRho
from repro.eval.split import split_by_ratio
from repro.eval.tuning import tune_method, tune_methods
from repro.parallel import (
    ExperimentEngine,
    GridTask,
    SplitSnapshot,
    resolve_jobs,
)

JOB_COUNTS = (1, 2, 4)

#: Small grids and a reduced lineup keep the matrix fast while still
#: exercising multi-method, multi-ratio reduction.
SMALL_METHODS = ("RAM", "AR", "ATT-ONLY")
SMALL_RATIOS = (1.4, 1.6)


def small_ar_grid():
    return list(attrank_grid(windows=(1, 3)))


class TestResolveJobs:
    def test_explicit_value_passes_through(self):
        assert resolve_jobs(3) == 3

    def test_zero_and_none_mean_all_cores(self):
        assert resolve_jobs(0) >= 1
        assert resolve_jobs(None) == resolve_jobs(0)

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError, match="jobs"):
            resolve_jobs(-1)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ConfigurationError, match="chunk_size"):
            ExperimentEngine(jobs=1, chunk_size=0)


class TestSplitSnapshot:
    def test_warm_builds_shared_structure(self, hepth_split):
        snapshot = SplitSnapshot(hepth_split, warm=False)
        before = snapshot.cached_structures
        snapshot.warm()
        assert snapshot.cached_structures >= before

    def test_warm_with_grid_touches_attention_windows(self, hepth_split):
        from repro.graph.cache import cached_keys

        snapshot = SplitSnapshot(hepth_split)
        snapshot.warm(grid=small_ar_grid())
        keys = cached_keys(hepth_split.current)
        reference = hepth_split.current.latest_time
        # The grid mentions windows 1 and 3; both must be materialised.
        assert ("attention", 1.0, reference) in keys
        assert ("attention", 3.0, reference) in keys

    def test_evaluate_matches_evaluate_setting(self, hepth_split):
        from repro.eval.tuning import evaluate_setting

        snapshot = SplitSnapshot(hepth_split)
        params = {"gamma": 0.4}
        direct = evaluate_setting("RAM", params, hepth_split, SpearmanRho())
        via_snapshot = snapshot.evaluate("RAM", params, SpearmanRho())
        assert direct == via_snapshot


class TestTuneMethodDeterminism:
    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_identical_to_serial(self, hepth_split, jobs):
        metric = NDCG(50)
        serial = tune_method("AR", small_ar_grid(), hepth_split, metric)
        parallel = ExperimentEngine(jobs=jobs).tune_method(
            "AR", small_ar_grid(), hepth_split, metric
        )
        assert parallel.method == serial.method
        assert parallel.metric == serial.metric
        # Bit-identical scores, same params, same sweep order.
        assert parallel.sweep == serial.sweep
        # Same chosen hyper-parameters (ties resolved identically).
        assert dict(parallel.best_params) == dict(serial.best_params)
        assert parallel.best_score == serial.best_score

    def test_empty_grid_raises_like_serial(self, hepth_split):
        with pytest.raises(EvaluationError, match="empty parameter grid"):
            ExperimentEngine(jobs=2).tune_method(
                "AR", [], hepth_split, NDCG(50)
            )

    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_tune_methods_matches_serial(self, hepth_split, jobs):
        metric = SpearmanRho()
        grids = {"RAM": list(ram_grid()), "AR": small_ar_grid()}
        serial = tune_methods(
            {name: list(grid) for name, grid in grids.items()},
            hepth_split,
            metric,
        )
        parallel = ExperimentEngine(jobs=jobs).tune_methods(
            grids, hepth_split, metric
        )
        assert set(parallel) == set(serial)
        for name in serial:
            assert parallel[name].sweep == serial[name].sweep
            assert dict(parallel[name].best_params) == dict(
                serial[name].best_params
            )


class TestCompareDeterminism:
    @pytest.fixture(scope="class")
    def serial_panel(self, hepth_tiny):
        return compare_over_ratios(
            hepth_tiny,
            dataset="hep-th",
            metric=NDCG(50),
            test_ratios=SMALL_RATIOS,
            methods=SMALL_METHODS,
        )

    @pytest.mark.parametrize("jobs", JOB_COUNTS)
    def test_compare_over_ratios_identical(
        self, hepth_tiny, serial_panel, jobs
    ):
        panel = ExperimentEngine(jobs=jobs).compare_over_ratios(
            hepth_tiny,
            dataset="hep-th",
            metric=NDCG(50),
            test_ratios=SMALL_RATIOS,
            methods=SMALL_METHODS,
        )
        assert panel.x_values == serial_panel.x_values
        assert tuple(panel.cells) == tuple(serial_panel.cells)
        for method in SMALL_METHODS:
            # Same metric values at every ratio (bit-identical)...
            assert panel.series(method) == serial_panel.series(method)
            # ... and the same hyper-parameters chosen per cell.
            for mine, reference in zip(
                panel.cells[method], serial_panel.cells[method]
            ):
                assert dict(mine.result.best_params) == dict(
                    reference.result.best_params
                )
        # Identical method rankings at every ratio.
        for ratio in SMALL_RATIOS:
            assert panel.winner_at(ratio) == serial_panel.winner_at(ratio)

    @pytest.mark.parametrize("jobs", (1, 2))
    def test_compare_over_k_identical(self, hepth_tiny, jobs):
        from repro.eval.experiment import compare_over_k

        serial = compare_over_k(
            hepth_tiny,
            dataset="hep-th",
            test_ratio=1.6,
            k_values=(10, 50),
            methods=SMALL_METHODS,
        )
        parallel = ExperimentEngine(jobs=jobs).compare_over_k(
            hepth_tiny,
            dataset="hep-th",
            test_ratio=1.6,
            k_values=(10, 50),
            methods=SMALL_METHODS,
        )
        assert parallel.x_values == serial.x_values
        for method in SMALL_METHODS:
            assert parallel.series(method) == serial.series(method)


class TestMapEvaluations:
    def test_results_are_in_task_order(self, hepth_split):
        engine = ExperimentEngine(jobs=2, chunk_size=1)
        metric = SpearmanRho()
        gammas = (0.1, 0.5, 0.9, 0.3, 0.7)
        tasks = [
            GridTask(
                split_key="s", method="RAM",
                params={"gamma": gamma}, metric=metric,
            )
            for gamma in gammas
        ]
        scores = engine.map_evaluations({"s": hepth_split}, tasks)
        serial = [
            SplitSnapshot(hepth_split).evaluate(
                "RAM", {"gamma": gamma}, metric
            )
            for gamma in gammas
        ]
        assert scores == serial

    def test_unknown_split_key_rejected(self, hepth_split):
        engine = ExperimentEngine(jobs=1)
        task = GridTask(
            split_key="missing", method="RAM",
            params={"gamma": 0.5}, metric=SpearmanRho(),
        )
        with pytest.raises(ConfigurationError, match="unknown split"):
            engine.map_evaluations({"s": hepth_split}, [task])

    def test_worker_errors_propagate(self, hepth_split):
        engine = ExperimentEngine(jobs=2)
        tasks = [
            GridTask(
                split_key="s", method="RAM",
                params={"gamma": 2.0},  # invalid: gamma must be <= 1
                metric=SpearmanRho(),
            )
            for _ in range(2)
        ]
        with pytest.raises(ConfigurationError, match="gamma"):
            engine.map_evaluations({"s": hepth_split}, tasks)
