"""Tests for repro.obs.tsdb — the ring-buffer metrics history store.

Timestamps are injected (``scrape_once(now)``) so every windowing
assertion is exact; only the one background-thread test touches the
wall clock.
"""

from __future__ import annotations

import time

import pytest

from obsschema import validate_history
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.obs.tsdb import (
    TimeSeriesStore,
    counter_delta,
    parse_series_key,
    series_key,
)


def _store_with_counter(**kwargs):
    """A store over a private registry; returns (store, counter)."""
    registry = MetricsRegistry()
    counter = registry.counter(
        "unit_requests_total", "requests", ("endpoint",)
    )
    store = TimeSeriesStore(registry.collect, **kwargs)
    return store, counter


class TestSeriesKeys:
    def test_roundtrip_with_labels(self):
        key = series_key(
            "m_total", (("endpoint", "top"), ("status", "200"))
        )
        assert key == 'm_total{endpoint="top",status="200"}'
        assert parse_series_key(key) == (
            "m_total", {"endpoint": "top", "status": "200"},
        )

    def test_roundtrip_without_labels(self):
        assert parse_series_key(series_key("m_total", ())) == (
            "m_total", {},
        )

    def test_roundtrip_escaped_quotes(self):
        key = series_key("m_total", (("q", 'say "hi"'),))
        assert parse_series_key(key) == ("m_total", {"q": 'say "hi"'})


class TestScraping:
    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            TimeSeriesStore(list, capacity=0)

    def test_ring_evicts_oldest_beyond_capacity(self):
        store, counter = _store_with_counter(capacity=3, interval=0.0)
        for tick in range(5):
            counter.inc(endpoint="top")
            store.scrape_once(now=float(tick))
        assert store.scrapes_total == 5
        points = store.points()
        assert [p["ts"] for p in points] == [2.0, 3.0, 4.0]
        key = 'unit_requests_total{endpoint="top"}'
        assert points[-1]["series"][key] == 5.0

    def test_clock_stepping_backwards_never_unsorts_the_ring(self):
        store, counter = _store_with_counter(interval=0.0)
        counter.inc(endpoint="top")
        store.scrape_once(now=100.0)
        store.scrape_once(now=50.0)  # NTP step, VM resume, ...
        assert [p["ts"] for p in store.points()] == [100.0, 100.0]

    def test_family_filter_and_window_bounds(self):
        registry = MetricsRegistry()
        first = registry.counter("unit_a_total", "a")
        registry.counter("unit_b_total", "b").inc()
        store = TimeSeriesStore(registry.collect, interval=0.0)
        for tick in range(4):
            first.inc()
            store.scrape_once(now=10.0 * tick)
        assert store.families() == ["unit_a_total", "unit_b_total"]
        only_a = store.points(family="unit_a_total")
        assert all(
            set(p["series"]) == {"unit_a_total"} for p in only_a
        )
        windowed = store.points(since=10.0, until=20.0)
        assert [p["ts"] for p in windowed] == [10.0, 20.0]

    def test_background_scraper_collects_and_stops(self):
        store, counter = _store_with_counter(interval=0.005)
        counter.inc(endpoint="top")
        store.start()
        try:
            deadline = time.monotonic() + 5.0
            while (
                store.scrapes_total == 0
                and time.monotonic() < deadline
            ):
                time.sleep(0.005)
        finally:
            store.stop()
        assert store.scrapes_total > 0
        settled = store.scrapes_total
        time.sleep(0.05)
        assert store.scrapes_total == settled  # really stopped

    def test_zero_interval_start_is_a_no_op(self):
        store, _ = _store_with_counter(interval=0.0)
        store.start()
        assert store._thread is None
        store.stop()


class TestWindow:
    def test_empty_store_has_no_window(self):
        store, _ = _store_with_counter(interval=0.0)
        assert store.window(60.0) is None

    def test_window_anchors_at_oldest_point_inside(self):
        store, counter = _store_with_counter(interval=0.0)
        for tick in (0.0, 10.0, 20.0, 30.0):
            counter.inc(endpoint="top")
            store.scrape_once(now=tick)
        old, new = store.window(15.0, now=30.0)
        assert (old["ts"], new["ts"]) == (20.0, 30.0)

    def test_window_clamps_to_available_history(self):
        store, counter = _store_with_counter(interval=0.0)
        counter.inc(endpoint="top")
        store.scrape_once(now=100.0)
        store.scrape_once(now=110.0)
        # A 3-day ask on 10 seconds of history: "since start".
        old, new = store.window(259200.0, now=110.0)
        assert (old["ts"], new["ts"]) == (100.0, 110.0)


class TestCounterDelta:
    def test_prefix_where_and_absent_old_series(self):
        old = {"series": {'m_total{endpoint="top"}': 3.0}}
        new = {
            "series": {
                'm_total{endpoint="top"}': 10.0,
                'm_total{endpoint="paper"}': 4.0,  # joined mid-window
                'other_total{endpoint="top"}': 99.0,
            }
        }
        assert counter_delta(old, new, prefix="m_total") == 11.0
        assert (
            counter_delta(
                old,
                new,
                prefix="m_total",
                where=lambda labels: labels["endpoint"] == "paper",
            )
            == 4.0
        )

    def test_decreases_clamp_to_zero(self):
        old = {"series": {"m_total": 50.0, "n_total": 1.0}}
        new = {"series": {"m_total": 10.0, "n_total": 3.0}}
        # A worker restart reset m_total; the fleet increase must not
        # go negative because one process was reborn.
        assert counter_delta(old, new, prefix="m_") == 0.0
        assert counter_delta(old, new, prefix="n_") == 2.0


class TestHistoryPayload:
    def test_document_shape_and_limit(self):
        store, counter = _store_with_counter(
            capacity=10, interval=0.0
        )
        for tick in range(6):
            counter.inc(endpoint="top")
            store.scrape_once(now=float(tick))
        document = store.history_payload(
            family="unit_requests_total", limit=2
        )
        validate_history(document)
        assert document["points_total"] == 6
        assert [p["ts"] for p in document["points"]] == [4.0, 5.0]
        assert document["families"] == ["unit_requests_total"]
        assert document["capacity"] == 10
        assert document["scrapes_total"] == 6

    def test_unknown_family_yields_no_points(self):
        store, counter = _store_with_counter(interval=0.0)
        counter.inc(endpoint="top")
        store.scrape_once(now=0.0)
        document = store.history_payload(family="nope_total")
        validate_history(document)
        assert document["points"] == []
        assert document["points_total"] == 0
