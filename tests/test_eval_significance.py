"""Unit tests for the bootstrap significance tooling."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval.metrics import SpearmanRho
from repro.eval.significance import bootstrap_metric, paired_bootstrap_test


@pytest.fixture(scope="module")
def correlated_data():
    rng = np.random.default_rng(0)
    truth = rng.gamma(2.0, 3.0, size=400)
    good = truth + rng.normal(0, 2.0, size=400)   # strongly correlated
    weak = truth + rng.normal(0, 30.0, size=400)  # weakly correlated
    return good, weak, truth


class TestBootstrapMetric:
    def test_interval_contains_point(self, correlated_data):
        good, _, truth = correlated_data
        result = bootstrap_metric(
            good, truth, SpearmanRho(), samples=200, seed=1
        )
        assert result.low <= result.point <= result.high
        assert result.samples > 100

    def test_interval_narrow_for_strong_signal(self, correlated_data):
        good, _, truth = correlated_data
        result = bootstrap_metric(
            good, truth, SpearmanRho(), samples=200, seed=1
        )
        assert result.high - result.low < 0.2
        assert result.point > 0.7

    def test_deterministic_given_seed(self, correlated_data):
        good, _, truth = correlated_data
        a = bootstrap_metric(good, truth, SpearmanRho(), samples=50, seed=3)
        b = bootstrap_metric(good, truth, SpearmanRho(), samples=50, seed=3)
        assert (a.low, a.high) == (b.low, b.high)

    def test_validation(self, correlated_data):
        good, _, truth = correlated_data
        with pytest.raises(EvaluationError):
            bootstrap_metric(good, truth, SpearmanRho(), samples=5)
        with pytest.raises(EvaluationError):
            bootstrap_metric(
                good, truth, SpearmanRho(), confidence=1.5
            )
        with pytest.raises(EvaluationError):
            bootstrap_metric(good[:10], truth, SpearmanRho())


class TestPairedBootstrap:
    def test_clear_winner_detected(self, correlated_data):
        good, weak, truth = correlated_data
        result = paired_bootstrap_test(
            good, weak, truth, SpearmanRho(), samples=200, seed=2
        )
        assert result.point_a > result.point_b
        assert result.mean_difference > 0
        assert result.p_superior > 0.95

    def test_self_comparison_is_even(self, correlated_data):
        good, _, truth = correlated_data
        result = paired_bootstrap_test(
            good, good, truth, SpearmanRho(), samples=100, seed=2
        )
        assert result.mean_difference == pytest.approx(0.0)
        assert result.p_superior == 0.0  # never *strictly* better

    def test_on_real_methods(self, hepth_split):
        """AttRank-with-attention vs NO-ATT: the paper's margin should be
        bootstrap-solid on the synthetic corpus."""
        from repro.core.attrank import AttRank
        from repro.core.variants import NoAttention

        network = hepth_split.current
        a = AttRank(
            alpha=0.2, beta=0.5, gamma=0.3, attention_window=2,
            decay_rate=-0.5,
        ).scores(network)
        b = NoAttention(alpha=0.2, decay_rate=-0.5).scores(network)
        result = paired_bootstrap_test(
            a, b, hepth_split.sti, SpearmanRho(), samples=100, seed=0
        )
        assert result.p_superior > 0.9

    def test_validation(self, correlated_data):
        good, weak, truth = correlated_data
        with pytest.raises(EvaluationError):
            paired_bootstrap_test(
                good, weak, truth, SpearmanRho(), samples=2
            )
        with pytest.raises(EvaluationError):
            paired_bootstrap_test(
                good[:5], weak, truth, SpearmanRho()
            )
