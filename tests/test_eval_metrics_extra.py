"""Unit tests for the extended metric battery."""

import numpy as np
import pytest
from scipy import stats

from repro.errors import EvaluationError
from repro.eval.metrics_extra import (
    AveragePrecisionAtK,
    KendallTau,
    OverlapAtK,
    average_precision_at_k,
    kendall_tau,
    overlap_at_k,
)


class TestKendall:
    def test_perfect_agreement(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert kendall_tau(a, a * 3) == pytest.approx(1.0)

    def test_perfect_reversal(self):
        a = np.array([1.0, 2.0, 3.0, 4.0])
        assert kendall_tau(a, -a) == pytest.approx(-1.0)

    def test_matches_scipy(self):
        rng = np.random.default_rng(4)
        a = rng.integers(0, 8, 150).astype(float)
        b = a + rng.normal(0, 2, 150)
        expected = stats.kendalltau(a, b).statistic
        assert kendall_tau(a, b) == pytest.approx(expected)

    def test_kendall_below_spearman_magnitude(self, hepth_split):
        """|tau| <= |rho| in typical monotone-ish data."""
        from repro.eval.metrics import spearman_rho
        from repro.baselines.ram import RetainedAdjacency

        scores = RetainedAdjacency(gamma=0.5).scores(hepth_split.current)
        tau = kendall_tau(scores, hepth_split.sti)
        rho = spearman_rho(scores, hepth_split.sti)
        assert 0 < tau < rho

    def test_constant_rejected(self):
        with pytest.raises(EvaluationError):
            kendall_tau(np.ones(5), np.arange(5.0))

    def test_metric_object(self):
        assert KendallTau().name == "kendall"


class TestOverlap:
    def test_identical_rankings(self):
        gains = np.array([5.0, 4.0, 3.0, 2.0, 1.0])
        assert overlap_at_k(gains, gains, 3) == 1.0

    def test_disjoint_tops(self):
        scores = np.array([1.0, 2.0, 3.0, 4.0])  # top-2: {3, 2}
        gains = np.array([4.0, 3.0, 2.0, 1.0])  # top-2: {0, 1}
        assert overlap_at_k(scores, gains, 2) == 0.0

    def test_partial(self):
        scores = np.array([10.0, 9.0, 1.0, 2.0])  # top-2 {0, 1}
        gains = np.array([5.0, 0.0, 4.0, 1.0])  # top-2 {0, 2}
        assert overlap_at_k(scores, gains, 2) == 0.5

    def test_k_clipped_to_size(self):
        gains = np.array([1.0, 2.0])
        assert overlap_at_k(gains, gains, 100) == 1.0

    def test_validation(self):
        with pytest.raises(EvaluationError):
            overlap_at_k(np.ones(3), np.ones(4), 2)
        with pytest.raises(EvaluationError):
            overlap_at_k(np.ones(3), np.ones(3), 0)

    def test_metric_object(self):
        assert OverlapAtK(25).name == "overlap@25"


class TestAveragePrecision:
    def test_perfect_prefix(self):
        gains = np.array([5.0, 4.0, 3.0, 0.0, 0.0])
        assert average_precision_at_k(gains, gains, 3) == pytest.approx(1.0)

    def test_hand_computed(self):
        # Truth top-2 = {0, 1}; method's top-2 is [0, 2]:
        # hit@1 (precision 1), miss@2 -> AP@2 = 1/2.
        gains = np.array([9.0, 8.0, 1.0, 0.0])
        scores = np.array([10.0, 5.0, 7.0, 1.0])
        assert average_precision_at_k(scores, gains, 2) == pytest.approx(0.5)

    def test_hand_computed_depth_three(self):
        # Truth top-3 = {0, 1, 2}; method ranks [0, 3, 1] in its top-3:
        # hits at positions 1 and 3 -> AP@3 = (1 + 2/3) / 3.
        gains = np.array([9.0, 8.0, 7.0, 0.0])
        scores = np.array([10.0, 5.0, 1.0, 7.0])
        expected = (1.0 + 2.0 / 3.0) / 3.0
        assert average_precision_at_k(scores, gains, 3) == pytest.approx(
            expected
        )

    def test_total_miss_is_zero(self):
        scores = np.array([1.0, 2.0, 3.0, 4.0])
        gains = np.array([4.0, 3.0, 2.0, 1.0])
        assert average_precision_at_k(scores, gains, 2) == 0.0

    def test_range_on_synthetic(self, hepth_split):
        from repro.baselines.citation_count import CitationCount

        scores = CitationCount().scores(hepth_split.current)
        value = average_precision_at_k(scores, hepth_split.sti, 50)
        assert 0.0 <= value <= 1.0

    def test_metric_object(self):
        assert AveragePrecisionAtK(10).name == "ap@10"


class TestMetricsInTuning:
    def test_extra_metrics_plug_into_tuning(self, hepth_split):
        """The extended metrics satisfy the Metric protocol end-to-end."""
        from repro.eval.tuning import tune_method

        for metric in (KendallTau(), OverlapAtK(20), AveragePrecisionAtK(20)):
            result = tune_method(
                "RAM",
                [{"gamma": 0.3}, {"gamma": 0.7}],
                hepth_split,
                metric,
            )
            assert result.metric == metric.name
            assert len(result.sweep) == 2
