"""Unit tests for repro.graph.temporal (snapshots and citation windows)."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.temporal import (
    chronological_order,
    citation_counts_between,
    citations_in_window,
    papers_published_until,
    prefix_by_count,
    snapshot_at,
)


class TestChronologicalOrder:
    def test_sorted_by_time(self, toy):
        order = chronological_order(toy)
        times = toy.publication_times[order]
        assert np.all(np.diff(times) >= 0)

    def test_stable_on_ties(self):
        from repro.graph.citation_network import CitationNetwork

        network = CitationNetwork(
            ["x", "y", "z"], [2000.0, 2000.0, 1999.0], [], []
        )
        order = chronological_order(network)
        # z first, then x before y (stable ties by original index).
        assert order.tolist() == [2, 0, 1]


class TestSnapshot:
    def test_snapshot_at_cutoff(self, toy):
        snapshot, kept = snapshot_at(toy, 1999.0)
        assert set(snapshot.paper_ids) == {"A", "B", "C", "D"}
        assert kept.tolist() == [0, 1, 2, 3]

    def test_snapshot_keeps_internal_edges_only(self, toy):
        snapshot, _ = snapshot_at(toy, 1999.0)
        # Edges among A-D: B->A, C->A, C->B, D->C.
        assert snapshot.n_citations == 4

    def test_snapshot_before_everything_is_empty(self, toy):
        snapshot, kept = snapshot_at(toy, 1900.0)
        assert snapshot.n_papers == 0
        assert kept.size == 0

    def test_snapshot_at_latest_is_whole_network(self, toy):
        snapshot, _ = snapshot_at(toy, toy.latest_time)
        assert snapshot.n_papers == toy.n_papers
        assert snapshot.n_citations == toy.n_citations

    def test_papers_published_until(self, toy):
        indices = papers_published_until(toy, 1995.0)
        assert indices.tolist() == [0, 1, 2]


class TestPrefixByCount:
    def test_prefix_sizes(self, toy):
        prefix, kept = prefix_by_count(toy, 3)
        assert prefix.n_papers == 3
        assert set(prefix.paper_ids) == {"A", "B", "C"}

    def test_prefix_zero(self, toy):
        prefix, _ = prefix_by_count(toy, 0)
        assert prefix.n_papers == 0

    def test_prefix_full(self, toy):
        prefix, _ = prefix_by_count(toy, toy.n_papers)
        assert prefix.n_citations == toy.n_citations

    def test_prefix_out_of_range(self, toy):
        with pytest.raises(GraphError):
            prefix_by_count(toy, 99)


class TestCitationWindows:
    def test_window_mask_half_open(self, chain):
        # Citations made at 2001, 2002, 2003.
        mask = citations_in_window(chain, 2001.0, 2003.0)
        # (2001, 2003] excludes the citation made exactly at 2001.
        assert mask.sum() == 2

    def test_window_counts(self, toy):
        # Citations made in (2000, 2003]: F(2001)->D,E,A; G(2002)->F,E; H(2003)->F,G.
        counts = citation_counts_between(toy, 2000.0, 2003.0)
        assert counts[toy.index_of("F")] == 2
        assert counts[toy.index_of("E")] == 2
        assert counts[toy.index_of("A")] == 1
        assert counts.sum() == 7

    def test_empty_window(self, toy):
        counts = citation_counts_between(toy, 2050.0, 2060.0)
        assert counts.sum() == 0

    def test_inverted_window_rejected(self, toy):
        with pytest.raises(GraphError, match="empty window"):
            citations_in_window(toy, 2005.0, 2000.0)

    def test_full_window_equals_in_degree(self, hepth_tiny):
        counts = citation_counts_between(hepth_tiny, -np.inf, np.inf)
        assert np.array_equal(counts, hepth_tiny.in_degree.astype(float))
