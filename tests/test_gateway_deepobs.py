"""End-to-end tests for the deep-observability endpoints.

``/v1/profile``, ``/v1/slo``, and ``/v1/metrics/history`` over real
sockets — first against a single-process :class:`GatewayServer`, then
against a two-worker :class:`MultiWorkerGateway` where every document
must be the *fleet-merged* truth, consistent with per-worker ground
truth scraped over the supervisor's control channel.  All documents go
through the strict ``obsschema`` validators.
"""

import asyncio
import json
import time
import urllib.request

from expfmt import parse_exposition
from obsschema import (
    validate_collapsed,
    validate_history,
    validate_profile,
    validate_slo,
)
from repro.gateway import GatewayConfig, GatewayServer, MultiWorkerGateway
from repro.obs.trace import disable_tracing, enable_tracing
from repro.serve import RankingService, ScoreIndex
from repro.synth import toy_network


def _make_service(methods=("CC", "PR")) -> RankingService:
    index = ScoreIndex(toy_network())
    for label in methods:
        index.add_method(label)
    return RankingService(index)


async def _get_raw(host, port, target, *, extra_headers=()):
    """One HTTP GET; returns (status, header dict, raw body bytes)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        request = f"GET {target} HTTP/1.1\r\nHost: {host}\r\n"
        for name, value in extra_headers:
            request += f"{name}: {value}\r\n"
        request += "Connection: close\r\n\r\n"
        writer.write(request.encode())
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        status = int(lines[0].split()[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if value:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        body = await reader.readexactly(length)
        return status, headers, body
    finally:
        writer.close()


async def _get_json(host, port, target):
    status, _, body = await _get_raw(host, port, target)
    return status, json.loads(body)


_PROFILED = GatewayConfig(
    port=0, profile=True, profile_hz=250.0, history_interval=0.0
)


async def _wait_for_samples(server, minimum=1, timeout=10.0):
    deadline = time.monotonic() + timeout
    while (
        server.profiler.samples_total < minimum
        and time.monotonic() < deadline
    ):
        await asyncio.sleep(0.01)
    assert server.profiler.samples_total >= minimum


class TestSingleProcessEndpoints:
    def test_profile_endpoint_renders_every_format(self):
        async def main():
            server = GatewayServer(
                _make_service(), config=_PROFILED
            )
            await server.start()
            host, port = server.config.host, server.port
            try:
                for _ in range(4):
                    await _get_json(host, port, "/v1/top?method=CC&k=3")
                await _wait_for_samples(server, minimum=5)
                out = {}
                out["json"] = await _get_json(host, port, "/v1/profile")
                out["top1"] = await _get_json(
                    host, port, "/v1/profile?top=1"
                )
                out["state"] = await _get_json(
                    host, port, "/v1/profile?format=state"
                )
                out["speedscope"] = await _get_json(
                    host, port, "/v1/profile?format=speedscope"
                )
                out["memory"] = await _get_json(
                    host, port, "/v1/profile?memory=1"
                )
                out["collapsed"] = await _get_raw(
                    host, port, "/v1/profile?format=collapsed"
                )
                return out
            finally:
                await server.stop()

        out = asyncio.run(main())
        status, document = out["json"]
        assert status == 200
        validate_profile(document)
        assert document["running"] is True
        assert document["hz"] == 250.0
        assert document["samples_total"] >= 5

        status, small = out["top1"]
        assert status == 200
        validate_profile(small)
        assert len(small["stacks"]) == 1

        status, state = out["state"]
        assert status == 200
        assert state["enabled"] is True
        assert state["profile"]["samples_total"] >= 5
        assert state["worker"]["index"] is None  # single process

        status, speedscope = out["speedscope"]
        assert status == 200
        assert speedscope["$schema"].startswith(
            "https://www.speedscope.app"
        )

        # profile_memory defaults off: the deep-dive tracemalloc knob
        # must never ride along with plain --profile.
        status, with_memory = out["memory"]
        assert status == 200
        assert with_memory["memory"] is None

        status, headers, body = out["collapsed"]
        assert status == 200
        assert headers["content-type"].startswith("text/plain")
        assert validate_collapsed(body.decode()) >= 1

    def test_profile_endpoint_reports_disabled(self):
        async def main():
            server = GatewayServer(
                _make_service(), config=GatewayConfig(
                    port=0, history_interval=0.0
                )
            )
            await server.start()
            try:
                return await _get_json(
                    server.config.host, server.port, "/v1/profile"
                )
            finally:
                await server.stop()

        status, document = asyncio.run(main())
        assert status == 200
        validate_profile(document)
        assert document["enabled"] is False
        assert "--profile" in document["detail"]

    def test_slo_and_history_reflect_served_traffic(self):
        async def main():
            server = GatewayServer(
                _make_service(), config=GatewayConfig(
                    port=0, history_interval=0.0
                )
            )
            await server.start()
            host, port = server.config.host, server.port
            try:
                for _ in range(5):
                    await _get_json(host, port, "/v1/top?method=CC&k=2")
                out = {}
                out["slo"] = await _get_json(host, port, "/v1/slo")
                out["history"] = await _get_json(
                    host,
                    port,
                    "/v1/metrics/history"
                    "?family=repro_gateway_responses_total&limit=5",
                )
                out["state"] = await _get_json(
                    host, port, "/v1/metrics?format=state"
                )
                return out
            finally:
                await server.stop()

        out = asyncio.run(main())
        status, slo = out["slo"]
        assert status == 200
        validate_slo(slo)
        assert [o["name"] for o in slo["objectives"]] == [
            "availability", "latency-p99-250ms",
        ]
        availability = slo["objectives"][0]
        assert availability["total"] >= 5.0
        assert availability["compliance"] == 1.0
        assert slo["firing"] is False

        status, history = out["history"]
        assert status == 200
        validate_history(history)
        # The endpoint self-scrapes when no interval scraper ran, so a
        # live process always has at least one point.
        assert history["points"]
        newest = history["points"][-1]["series"]
        assert sum(
            value
            for key, value in newest.items()
            if 'status="200"' in key
        ) >= 5.0

        status, state = out["state"]
        assert status == 200
        assert state["worker"]["index"] is None
        names = {family["name"] for family in state["registry"]}
        assert "repro_gateway_responses_total" in names
        # Mergeable state stays worker-unlabelled: labels are an
        # exposition concern, merging happens on raw series.
        for family in state["registry"]:
            for sample in family["samples"]:
                assert ("worker",) not in {
                    tuple(pair[:1]) for pair in sample["labels"]
                }

    def test_request_id_adoption_is_hardened(self):
        async def main():
            server = GatewayServer(
                _make_service(), config=GatewayConfig(
                    port=0, history_interval=0.0
                )
            )
            await server.start()
            host, port = server.config.host, server.port
            try:
                out = {}
                for label, rid in (
                    ("good", "trace-abc-123"),
                    ("control", "evil\x01id"),
                    ("tab", "a\tb"),
                    ("long", "x" * 300),
                    ("spaces", "   "),
                ):
                    out[label] = await _get_raw(
                        host,
                        port,
                        "/v1/top?method=CC&k=1",
                        extra_headers=(("X-Request-Id", rid),),
                    )
                return out
            finally:
                await server.stop()

        out = asyncio.run(main())
        for label, (status, _, _) in out.items():
            assert status == 200, label

        echoed = {
            label: headers["x-request-id"]
            for label, (_, headers, _) in out.items()
        }
        # A clean client id is adopted verbatim and echoed back.
        assert echoed["good"] == "trace-abc-123"
        # Control characters mean rejection: the generated
        # connection-scoped id stays bound instead.
        assert "evil" not in echoed["control"]
        assert "\t" not in echoed["tab"]
        # Oversized ids are truncated, not rejected.
        assert echoed["long"] == "x" * 128


def _urlopen_json(port, target):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{target}", timeout=10.0
    ) as response:
        return response.status, json.loads(response.read())


def _urlopen_text(port, target):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{target}", timeout=10.0
    ) as response:
        return response.status, response.read().decode()


class TestFleetEndpoints:
    def test_two_worker_fleet_serves_merged_observability(self):
        enable_tracing()  # workers fork with the collector installed
        gateway = MultiWorkerGateway(
            _make_service(),
            workers=2,
            config=GatewayConfig(
                port=0,
                profile=True,
                profile_hz=250.0,
                update_interval=0.0,
                history_interval=0.0,
            ),
        )
        try:
            with gateway:
                for _ in range(12):
                    _urlopen_json(gateway.port, "/v1/top?method=CC&k=3")

                # Ground truth over the control channel: wait until
                # both workers report profiler samples.
                deadline = time.monotonic() + 15.0
                while time.monotonic() < deadline:
                    truth = gateway.aggregate_profile()
                    if all(
                        w["scraped"] and w["samples"] > 0
                        for w in truth["workers"]
                    ):
                        break
                    time.sleep(0.05)
                assert all(
                    w["samples"] > 0 for w in truth["workers"]
                ), truth["workers"]
                # The merge is an exact sum of per-worker raw counts.
                assert truth["profile"]["samples_total"] == sum(
                    w["samples"] for w in truth["workers"]
                )

                # The public port answers with the fleet document no
                # matter which worker the kernel picks.
                status, profile = _urlopen_json(
                    gateway.port, "/v1/profile"
                )
                assert status == 200
                validate_profile(profile)
                assert len(profile["workers"]) == 2
                assert {w["worker"] for w in profile["workers"]} == {0, 1}
                assert profile["samples_total"] >= (
                    truth["profile"]["samples_total"]
                )

                status, collapsed = _urlopen_text(
                    gateway.port, "/v1/profile?format=collapsed"
                )
                assert status == 200
                assert validate_collapsed(collapsed) >= 1

                # ?scope=local escapes the proxy: the answering worker
                # reports only itself, identified by index.
                status, local = _urlopen_json(
                    gateway.port, "/v1/profile?format=state&scope=local"
                )
                assert status == 200
                assert local["worker"]["index"] in (0, 1)
                assert (
                    local["profile"]["samples_total"]
                    <= profile["samples_total"]
                )

                status, slo = _urlopen_json(gateway.port, "/v1/slo")
                assert status == 200
                validate_slo(slo)
                availability = slo["objectives"][0]
                assert availability["total"] >= 12.0
                assert availability["compliance"] == 1.0

                status, history = _urlopen_json(
                    gateway.port,
                    "/v1/metrics/history"
                    "?family=repro_gateway_responses_total",
                )
                assert status == 200
                validate_history(history)
                newest = history["points"][-1]["series"]
                # Fleet history sums both workers' counters: all 12
                # requests appear in one merged point, regardless of
                # how the kernel spread them.
                assert sum(
                    value
                    for key, value in newest.items()
                    if 'status="200"' in key
                ) >= 12.0

                status, trace = _urlopen_json(
                    gateway.port, "/v1/trace?limit=10"
                )
                assert status == 200
                assert trace["enabled"] is True
                assert trace["workers"] == 2
                assert trace["traces"], "no trace trees aggregated"
                assert len(trace["traces"]) <= 10
                for tree in trace["traces"]:
                    assert tree["worker"] in (0, 1)

                # Exposition carries the worker identity label so a
                # Prometheus scrape of any one worker says who it hit;
                # the mergeable state (asserted unlabelled above for
                # the single-process server) stays clean.
                status, text = _urlopen_text(
                    gateway.port, "/v1/metrics?format=prometheus"
                )
                assert status == 200
                families = parse_exposition(text)
                responses = families["repro_gateway_responses_total"]
                assert responses.values()  # saw traffic
                for labels in responses.values():
                    worker = dict(labels).get("worker")
                    assert worker in ("0", "1")
        finally:
            disable_tracing()
