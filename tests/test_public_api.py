"""Tests of the package-level public API and the error hierarchy."""

import inspect

import pytest

import repro
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    DataFormatError,
    EvaluationError,
    GatewayError,
    GraphError,
    ReproError,
    StreamError,
)


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__.count(".") == 2

    def test_headline_classes_importable_from_root(self):
        from repro import (
            AttRank,
            CitationNetwork,
            NetworkBuilder,
            RankingMethod,
        )

        assert issubclass(AttRank, RankingMethod)
        assert inspect.isclass(CitationNetwork)
        assert inspect.isclass(NetworkBuilder)

    def test_quickstart_docstring_flow(self):
        """The module docstring's example must actually run."""
        from repro import (
            AttRank,
            generate_dataset,
            spearman_rho,
            split_by_ratio,
        )

        network = generate_dataset("hep-th", size="tiny", seed=1)
        split = split_by_ratio(network, test_ratio=1.6)
        method = AttRank(
            alpha=0.2, beta=0.5, gamma=0.3, attention_window=2
        )
        rho = spearman_rho(method.scores(split.current), split.sti)
        assert -1.0 <= rho <= 1.0


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "subclass",
        [
            GraphError,
            DataFormatError,
            ConfigurationError,
            EvaluationError,
            StreamError,
            GatewayError,
        ],
    )
    def test_derives_from_base(self, subclass):
        assert issubclass(subclass, ReproError)
        assert issubclass(subclass, Exception)

    def test_convergence_error_carries_diagnostics(self):
        error = ConvergenceError("nope", iterations=7, residual=0.5)
        assert isinstance(error, ReproError)
        assert error.iterations == 7
        assert error.residual == 0.5

    def test_single_catch_at_api_boundary(self, toy):
        """Any library failure is catchable as ReproError (the CLI
        relies on this)."""
        from repro import make_method

        with pytest.raises(ReproError):
            make_method("no-such-method")
        with pytest.raises(ReproError):
            toy.index_of("no-such-paper")
        with pytest.raises(ReproError):
            repro.split_by_ratio(toy, 99.0)
