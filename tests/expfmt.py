"""A minimal, strict Prometheus text-exposition (0.0.4) parser.

Test helper, not a product module: the gateway tests and the CI
load-smoke job feed ``/v1/metrics?format=prometheus`` output through
this to prove the rendering is something a real scraper would accept.
Strictness is the point — every line must be a well-formed ``# HELP``,
``# TYPE``, or sample line, every sample must belong to the family
most recently declared by name, histograms must expose cumulative
``le`` buckets ending at ``+Inf`` with consistent ``_sum``/``_count``
series, and any violation raises :class:`ExpositionError` with the
offending line.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass, field

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$"
)
LABEL_PAIR = re.compile(
    r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$'
)

KINDS = frozenset({"counter", "gauge", "histogram", "summary", "untyped"})


class ExpositionError(ValueError):
    """The text is not valid exposition format."""


@dataclass
class Family:
    """One parsed metric family."""

    name: str
    kind: str
    help: str
    samples: list[tuple[str, dict[str, str], float]] = field(
        default_factory=list
    )

    def values(
        self, suffix: str = ""
    ) -> dict[tuple[tuple[str, str], ...], float]:
        """``labels -> value`` for the series named ``name + suffix``."""
        wanted = self.name + suffix
        return {
            tuple(sorted(labels.items())): value
            for sample_name, labels, value in self.samples
            if sample_name == wanted
        }


def _parse_value(raw: str, line: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    if raw == "NaN":
        return math.nan
    try:
        return float(raw)
    except ValueError:
        raise ExpositionError(f"bad sample value in: {line!r}") from None


def _parse_labels(raw: str | None, line: str) -> dict[str, str]:
    if not raw:
        return {}
    labels: dict[str, str] = {}
    for part in raw.split(","):
        match = LABEL_PAIR.match(part.strip())
        if match is None:
            raise ExpositionError(f"bad label pair in: {line!r}")
        name = match.group("name")
        if name in labels:
            raise ExpositionError(f"duplicate label {name!r} in: {line!r}")
        value = match.group("value")
        labels[name] = (
            value.replace('\\"', '"')
            .replace("\\n", "\n")
            .replace("\\\\", "\\")
        )
    return labels


def _base_name(sample_name: str, family: Family) -> bool:
    """Whether ``sample_name`` may appear inside ``family``."""
    if family.kind == "histogram":
        return sample_name in (
            family.name + "_bucket",
            family.name + "_sum",
            family.name + "_count",
        )
    if family.kind == "summary":
        return sample_name in (
            family.name,
            family.name + "_sum",
            family.name + "_count",
        )
    return sample_name == family.name


def _check_histogram(family: Family) -> None:
    """Cumulative buckets ending at +Inf, consistent with _count."""
    by_series: dict[tuple[tuple[str, str], ...], list[tuple[float, float]]]
    by_series = {}
    for sample_name, labels, value in family.samples:
        if sample_name != family.name + "_bucket":
            continue
        if "le" not in labels:
            raise ExpositionError(
                f"{family.name}: _bucket sample without an le label"
            )
        rest = tuple(
            sorted((k, v) for k, v in labels.items() if k != "le")
        )
        bound = _parse_value(labels["le"], f'le="{labels["le"]}"')
        by_series.setdefault(rest, []).append((bound, value))
    counts = family.values("_count")
    sums = family.values("_sum")
    if not by_series and (counts or sums):
        raise ExpositionError(
            f"{family.name}: _sum/_count without _bucket samples"
        )
    for rest, buckets in by_series.items():
        bounds = [bound for bound, _ in buckets]
        if bounds != sorted(bounds):
            raise ExpositionError(
                f"{family.name}: le bounds out of order"
            )
        if not math.isinf(bounds[-1]):
            raise ExpositionError(
                f"{family.name}: bucket series does not end at +Inf"
            )
        cumulative = [count for _, count in buckets]
        if cumulative != sorted(cumulative):
            raise ExpositionError(
                f"{family.name}: bucket counts are not cumulative"
            )
        if rest not in counts or rest not in sums:
            raise ExpositionError(
                f"{family.name}: missing _sum/_count for {dict(rest)}"
            )
        if counts[rest] != cumulative[-1]:
            raise ExpositionError(
                f"{family.name}: +Inf bucket {cumulative[-1]} != "
                f"_count {counts[rest]}"
            )


def parse_exposition(text: str) -> dict[str, Family]:
    """Parse strictly; raise :class:`ExpositionError` on any violation."""
    families: dict[str, Family] = {}
    current: Family | None = None
    pending_help: dict[str, str] = {}
    for line in text.split("\n"):
        if line == "":
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(" ", 1)
            name = parts[0]
            if not METRIC_NAME.match(name):
                raise ExpositionError(f"bad metric name in: {line!r}")
            pending_help[name] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split(" ")
            if len(parts) != 2:
                raise ExpositionError(f"bad TYPE line: {line!r}")
            name, kind = parts
            if not METRIC_NAME.match(name):
                raise ExpositionError(f"bad metric name in: {line!r}")
            if kind not in KINDS:
                raise ExpositionError(f"unknown kind {kind!r}: {line!r}")
            if name in families:
                raise ExpositionError(f"duplicate TYPE for {name!r}")
            current = Family(
                name=name, kind=kind, help=pending_help.get(name, "")
            )
            families[name] = current
            continue
        if line.startswith("#"):
            raise ExpositionError(f"unrecognised comment line: {line!r}")
        match = SAMPLE_LINE.match(line)
        if match is None:
            raise ExpositionError(f"malformed sample line: {line!r}")
        sample_name = match.group("name")
        if current is None or not _base_name(sample_name, current):
            raise ExpositionError(
                f"sample {sample_name!r} outside its family: {line!r}"
            )
        labels = _parse_labels(match.group("labels"), line)
        value = _parse_value(match.group("value"), line)
        current.samples.append((sample_name, labels, value))
    for family in families.values():
        if family.kind == "histogram":
            _check_histogram(family)
    return families
