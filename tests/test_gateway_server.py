"""Integration tests for the asyncio HTTP gateway.

Real sockets, real HTTP: each test starts a :class:`GatewayServer` on
an ephemeral port inside ``asyncio.run`` and drives it with raw
stream-client requests — concurrent clients during live stream
updates, load shedding under overload, and drain-on-shutdown.
"""

import asyncio
import json
import time

import pytest

from repro.gateway import GatewayConfig, GatewayServer, GatewayThread
from repro.serve import RankingService, ScoreIndex
from repro.stream import EventLog, StreamIngestor
from repro.synth import toy_network


def _make_service(methods=("CC", "PR")) -> RankingService:
    index = ScoreIndex(toy_network())
    for label in methods:
        index.add_method(label)
    return RankingService(index)


async def _get(host, port, target, *, close=False):
    """One HTTP GET on a fresh connection; returns (status, document)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        connection = "close" if close else "keep-alive"
        writer.write(
            f"GET {target} HTTP/1.1\r\nHost: {host}\r\n"
            f"Connection: {connection}\r\n\r\n".encode()
        )
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        status = int(lines[0].split()[1])
        length = 0
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                length = int(value.strip())
        body = await reader.readexactly(length)
        return status, json.loads(body)
    finally:
        writer.close()


class TestRoutesAndErrors:
    def test_endpoints_and_typed_errors(self):
        service = _make_service()

        async def main():
            server = GatewayServer(service, config=GatewayConfig(port=0))
            await server.start()
            host, port = server.config.host, server.port
            try:
                out = {}
                out["health"] = await _get(host, port, "/v1/healthz")
                out["top"] = await _get(
                    host, port, "/v1/top?method=CC&k=3"
                )
                out["paper"] = await _get(host, port, "/v1/paper/A")
                out["compare"] = await _get(
                    host, port, "/v1/compare?methods=CC,PR&k=4"
                )
                out["missing"] = await _get(host, port, "/v1/paper/ZZZ")
                out["bad_method"] = await _get(
                    host, port, "/v1/top?method=NOPE"
                )
                out["bad_param"] = await _get(
                    host, port, "/v1/top?k=banana"
                )
                out["unknown"] = await _get(host, port, "/nope")
                out["metrics"] = await _get(host, port, "/v1/metrics")
                return out
            finally:
                await server.stop()

        out = asyncio.run(main())
        status, health = out["health"]
        assert status == 200 and health["status"] == "ok"
        assert health["papers"] == 8

        status, top = out["top"]
        assert status == 200
        direct = service.top_k("CC", k=3)
        assert top["version"] == 0
        assert [e["paper_id"] for e in top["result"]["entries"]] == list(
            direct.paper_ids
        )
        assert top["result"]["entries"][0]["score"] == (
            direct.entries[0].score
        )

        status, paper = out["paper"]
        assert status == 200
        assert paper["result"]["ranks"] == dict(
            service.paper("A").ranks
        )

        status, compare = out["compare"]
        assert status == 200
        assert set(compare["result"]["results"]) == {"CC", "PR"}

        assert out["missing"][0] == 404
        assert out["missing"][1]["error"]["type"] == "GraphError"
        assert out["bad_method"][0] == 400
        assert out["bad_method"][1]["error"]["type"] == (
            "ConfigurationError"
        )
        assert out["bad_param"][0] == 400
        assert out["unknown"][0] == 404

        status, metrics = out["metrics"]
        assert status == 200
        assert metrics["requests"]["started"] >= 8
        assert metrics["latency"]["overall"]["count"] >= 7
        assert "result_cache" in metrics
        assert metrics["admission"]["active"] == 0

    def test_malformed_request_gets_400_not_a_crash(self):
        """A garbage request line is answered with a typed 400 and a
        closed connection — never an unhandled task exception."""
        service = _make_service()

        async def main():
            server = GatewayServer(service, config=GatewayConfig(port=0))
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.config.host, server.port
                )
                writer.write(b"BOGUS\r\n\r\n")
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                status = int(head.split(b" ")[1])
                length = int(
                    [
                        line.split(b":")[1]
                        for line in head.split(b"\r\n")
                        if line.lower().startswith(b"content-length")
                    ][0]
                )
                document = json.loads(await reader.readexactly(length))
                trailing = await reader.read()   # server closed after
                writer.close()
                # The gateway keeps serving normally afterwards.
                follow_up = await _get(
                    server.config.host, server.port, "/v1/healthz"
                )
                return status, document, trailing, head, follow_up
            finally:
                await server.stop()

        status, document, trailing, head, follow_up = asyncio.run(main())
        assert status == 400
        assert document["error"]["type"] == "GatewayError"
        assert b"Connection: close" in head
        assert trailing == b""
        assert follow_up[0] == 200

    def test_keep_alive_connection_reuse(self):
        service = _make_service()

        async def main():
            server = GatewayServer(service, config=GatewayConfig(port=0))
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.config.host, server.port
                )
                statuses = []
                for _ in range(3):
                    writer.write(
                        b"GET /v1/top?method=CC&k=2 HTTP/1.1\r\n"
                        b"Host: x\r\n\r\n"
                    )
                    await writer.drain()
                    head = await reader.readuntil(b"\r\n\r\n")
                    statuses.append(int(head.split(b" ")[1]))
                    length = int(
                        [
                            line.split(b":")[1]
                            for line in head.split(b"\r\n")
                            if line.lower().startswith(b"content-length")
                        ][0]
                    )
                    await reader.readexactly(length)
                writer.close()
                return statuses
            finally:
                await server.stop()

        assert asyncio.run(main()) == [200, 200, 200]


class TestLiveUpdates:
    def test_concurrent_clients_during_stream_updates(self):
        """Mixed traffic while micro-batches land: every response is
        stamped with a consistent version and matches a direct call."""
        log = EventLog.from_network(toy_network())
        ingestor = StreamIngestor(
            log, methods=("CC",), batch_size=2, bootstrap_size=8
        )
        ingestor.step()  # bootstrap -> version 0
        service = ingestor.service

        async def client(host, port, n, out):
            for _ in range(n):
                status, document = await _get(
                    host, port, "/v1/top?method=CC&k=3"
                )
                assert status == 200
                out.append(document)

        async def main():
            server = GatewayServer(
                service,
                config=GatewayConfig(port=0, update_interval=0.0),
                ingestor=ingestor,
            )
            await server.start()
            responses: list = []
            try:
                await asyncio.gather(
                    *(
                        client(
                            server.config.host, server.port, 6, responses
                        )
                        for _ in range(4)
                    )
                )
            finally:
                await server.stop()
            return responses, server

        responses, server = asyncio.run(main())
        assert len(responses) == 24
        versions = {doc["version"] for doc in responses}
        assert len(versions) >= 1
        # The envelope version always matches the page's own stamp.
        for doc in responses:
            assert doc["result"]["version"] == doc["version"]
        assert server.metrics.updates_applied > 0
        # The final version's pages match a direct call now.
        final = max(versions)
        if service.version == final:
            direct = service.top_k("CC", k=3)
            for doc in responses:
                if doc["version"] == final:
                    assert [
                        e["paper_id"]
                        for e in doc["result"]["entries"]
                    ] == list(direct.paper_ids)


class TestLoadShedding:
    def test_overload_sheds_503(self, monkeypatch):
        service = _make_service()
        real = service.execute_batch

        def slow_execute(queries):
            time.sleep(0.05)
            return real(queries)

        monkeypatch.setattr(service, "execute_batch", slow_execute)

        async def main():
            server = GatewayServer(
                service,
                config=GatewayConfig(
                    port=0, max_inflight=1, max_queue=0
                ),
            )
            await server.start()
            try:
                outcomes = await asyncio.gather(
                    *(
                        _get(
                            server.config.host,
                            server.port,
                            "/v1/top?method=CC&k=2",
                        )
                        for _ in range(6)
                    )
                )
            finally:
                await server.stop()
            return outcomes, server

        outcomes, server = asyncio.run(main())
        statuses = sorted(status for status, _ in outcomes)
        assert 200 in statuses            # someone got served
        assert 503 in statuses            # someone was shed
        shed = [doc for status, doc in outcomes if status == 503]
        assert all(
            doc["error"]["reason"] == "queue-full" for doc in shed
        )
        assert server.metrics.shed_503 == len(shed)

    def test_backend_breakage_answers_500_without_leaking_slots(
        self, monkeypatch
    ):
        """A non-ReproError from the backend must surface as a 500 and
        release its admission slot — not leak until the gateway sheds
        everything as queue-full."""
        service = _make_service()

        def broken_execute(queries):
            raise AttributeError("backend exploded")

        monkeypatch.setattr(service, "execute_batch", broken_execute)

        async def main():
            server = GatewayServer(
                service,
                config=GatewayConfig(port=0, max_inflight=2, max_queue=0),
            )
            await server.start()
            try:
                broken = [
                    await _get(
                        server.config.host, server.port,
                        "/v1/top?method=CC&k=2",
                    )
                    for _ in range(4)  # more failures than capacity
                ]
                active_after = server.admission.active
                monkeypatch.undo()  # heal the backend
                healed = await _get(
                    server.config.host, server.port,
                    "/v1/top?method=CC&k=2",
                )
            finally:
                await server.stop()
            return broken, active_after, healed

        broken, active_after, healed = asyncio.run(main())
        assert [status for status, _ in broken] == [500] * 4
        assert all(
            doc["error"]["type"] == "AttributeError"
            for _, doc in broken
        )
        assert active_after == 0        # every slot released
        assert healed[0] == 200         # not stuck shedding queue-full

    def test_rate_limit_sheds_429(self):
        service = _make_service()

        async def main():
            server = GatewayServer(
                service,
                config=GatewayConfig(
                    port=0, rate_limit=0.001, rate_burst=1
                ),
            )
            await server.start()
            try:
                first = await _get(
                    server.config.host, server.port,
                    "/v1/top?method=CC&k=2",
                )
                second = await _get(
                    server.config.host, server.port,
                    "/v1/top?method=CC&k=2",
                )
                # healthz is never rate limited.
                health = await _get(
                    server.config.host, server.port, "/v1/healthz"
                )
            finally:
                await server.stop()
            return first, second, health

        first, second, health = asyncio.run(main())
        assert first[0] == 200
        assert second[0] == 429
        assert second[1]["error"]["reason"] == "rate-limited"
        assert health[0] == 200


class TestDrain:
    def test_stop_finishes_inflight_then_refuses(self, monkeypatch):
        service = _make_service()
        real = service.execute_batch

        def slow_execute(queries):
            time.sleep(0.1)
            return real(queries)

        monkeypatch.setattr(service, "execute_batch", slow_execute)

        async def main():
            server = GatewayServer(service, config=GatewayConfig(port=0))
            await server.start()
            host, port = server.config.host, server.port
            inflight = asyncio.ensure_future(
                _get(host, port, "/v1/top?method=CC&k=2")
            )
            await asyncio.sleep(0.03)   # request reaches the executor
            await server.stop()         # drain must wait for it
            status, document = await inflight
            refused = False
            try:
                await _get(host, port, "/v1/healthz")
            except (ConnectionRefusedError, OSError):
                refused = True
            return status, document, refused

        status, document, refused = asyncio.run(main())
        assert status == 200            # the admitted request finished
        assert document["result"]["entries"]
        assert refused                  # the listener is gone

    def test_requests_during_drain_get_503(self):
        service = _make_service()

        async def main():
            server = GatewayServer(service, config=GatewayConfig(port=0))
            await server.start()
            host, port = server.config.host, server.port
            # An open keep-alive connection outlives the listener...
            reader, writer = await asyncio.open_connection(host, port)
            server.admission.start_draining()
            writer.write(
                b"GET /v1/top?method=CC&k=2 HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            status = int(head.split(b" ")[1])
            length = int(
                [
                    line.split(b":")[1]
                    for line in head.split(b"\r\n")
                    if line.lower().startswith(b"content-length")
                ][0]
            )
            document = json.loads(await reader.readexactly(length))
            writer.close()
            await server.stop()
            return status, document, head

        status, document, head = asyncio.run(main())
        assert status == 503
        assert document["error"]["reason"] == "draining"
        assert b"Connection: close" in head


class TestGatewayThread:
    def test_thread_restarts_on_a_fresh_port_binding(self):
        """stop() re-arms the thread: a second start() must report the
        NEW live port, not the first run's dead one."""
        import urllib.request

        service = _make_service()
        gateway = GatewayThread(service)
        gateway.start()
        first_port = gateway.port
        gateway.stop()
        gateway.start()
        try:
            assert gateway.port is not None
            body = urllib.request.urlopen(
                f"http://127.0.0.1:{gateway.port}/v1/healthz", timeout=10
            ).read()
            assert json.loads(body)["status"] == "ok"
        finally:
            gateway.stop()
        assert first_port is not None  # both runs actually bound

    def test_thread_serves_urllib_and_drains(self):
        import urllib.request

        service = _make_service()
        with GatewayThread(service) as gateway:
            body = urllib.request.urlopen(
                f"http://127.0.0.1:{gateway.port}/v1/top?method=CC&k=2",
                timeout=10,
            ).read()
            document = json.loads(body)
        assert document["version"] == 0
        assert len(document["result"]["entries"]) == 2
        # After the context exits, the port is closed.
        with pytest.raises(Exception):
            urllib.request.urlopen(
                f"http://127.0.0.1:{gateway.port}/v1/healthz", timeout=2
            )
