"""Integration tests for the asyncio HTTP gateway.

Real sockets, real HTTP: each test starts a :class:`GatewayServer` on
an ephemeral port inside ``asyncio.run`` and drives it with raw
stream-client requests — concurrent clients during live stream
updates, load shedding under overload, and drain-on-shutdown.
"""

import asyncio
import io
import json
import time

import pytest

from expfmt import parse_exposition
from repro.gateway import GatewayConfig, GatewayServer, GatewayThread
from repro.obs.logging import configure_logging, reset_logging
from repro.obs.trace import disable_tracing, enable_tracing
from repro.serve import RankingService, ScoreIndex
from repro.stream import EventLog, StreamIngestor
from repro.synth import toy_network


def _make_service(methods=("CC", "PR")) -> RankingService:
    index = ScoreIndex(toy_network())
    for label in methods:
        index.add_method(label)
    return RankingService(index)


async def _get_raw(host, port, target, *, extra_headers=()):
    """One HTTP GET; returns (status, header dict, raw body bytes)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        request = f"GET {target} HTTP/1.1\r\nHost: {host}\r\n"
        for name, value in extra_headers:
            request += f"{name}: {value}\r\n"
        request += "Connection: keep-alive\r\n\r\n"
        writer.write(request.encode())
        await writer.drain()
        head = await reader.readuntil(b"\r\n\r\n")
        lines = head.decode().split("\r\n")
        status = int(lines[0].split()[1])
        headers = {}
        for line in lines[1:]:
            name, _, value = line.partition(":")
            if value:
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0))
        body = await reader.readexactly(length)
        return status, headers, body
    finally:
        writer.close()


async def _get(host, port, target, *, close=False):
    """One HTTP GET on a fresh connection; returns (status, document)."""
    status, _, body = await _get_raw(host, port, target)
    return status, json.loads(body)


class TestRoutesAndErrors:
    def test_endpoints_and_typed_errors(self):
        service = _make_service()

        async def main():
            server = GatewayServer(service, config=GatewayConfig(port=0))
            await server.start()
            host, port = server.config.host, server.port
            try:
                out = {}
                out["health"] = await _get(host, port, "/v1/healthz")
                out["top"] = await _get(
                    host, port, "/v1/top?method=CC&k=3"
                )
                out["paper"] = await _get(host, port, "/v1/paper/A")
                out["compare"] = await _get(
                    host, port, "/v1/compare?methods=CC,PR&k=4"
                )
                out["missing"] = await _get(host, port, "/v1/paper/ZZZ")
                out["bad_method"] = await _get(
                    host, port, "/v1/top?method=NOPE"
                )
                out["bad_param"] = await _get(
                    host, port, "/v1/top?k=banana"
                )
                out["unknown"] = await _get(host, port, "/nope")
                out["metrics"] = await _get(host, port, "/v1/metrics")
                return out
            finally:
                await server.stop()

        out = asyncio.run(main())
        status, health = out["health"]
        assert status == 200 and health["status"] == "ok"
        assert health["papers"] == 8

        status, top = out["top"]
        assert status == 200
        direct = service.top_k("CC", k=3)
        assert top["version"] == 0
        assert [e["paper_id"] for e in top["result"]["entries"]] == list(
            direct.paper_ids
        )
        assert top["result"]["entries"][0]["score"] == (
            direct.entries[0].score
        )

        status, paper = out["paper"]
        assert status == 200
        assert paper["result"]["ranks"] == dict(
            service.paper("A").ranks
        )

        status, compare = out["compare"]
        assert status == 200
        assert set(compare["result"]["results"]) == {"CC", "PR"}

        assert out["missing"][0] == 404
        assert out["missing"][1]["error"]["type"] == "GraphError"
        assert out["bad_method"][0] == 400
        assert out["bad_method"][1]["error"]["type"] == (
            "ConfigurationError"
        )
        assert out["bad_param"][0] == 400
        assert out["unknown"][0] == 404

        status, metrics = out["metrics"]
        assert status == 200
        assert metrics["requests"]["started"] >= 8
        assert metrics["latency"]["overall"]["count"] >= 7
        assert "result_cache" in metrics
        assert metrics["admission"]["active"] == 0

    def test_malformed_request_gets_400_not_a_crash(self):
        """A garbage request line is answered with a typed 400 and a
        closed connection — never an unhandled task exception."""
        service = _make_service()

        async def main():
            server = GatewayServer(service, config=GatewayConfig(port=0))
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.config.host, server.port
                )
                writer.write(b"BOGUS\r\n\r\n")
                await writer.drain()
                head = await reader.readuntil(b"\r\n\r\n")
                status = int(head.split(b" ")[1])
                length = int(
                    [
                        line.split(b":")[1]
                        for line in head.split(b"\r\n")
                        if line.lower().startswith(b"content-length")
                    ][0]
                )
                document = json.loads(await reader.readexactly(length))
                trailing = await reader.read()   # server closed after
                writer.close()
                # The gateway keeps serving normally afterwards.
                follow_up = await _get(
                    server.config.host, server.port, "/v1/healthz"
                )
                return status, document, trailing, head, follow_up
            finally:
                await server.stop()

        status, document, trailing, head, follow_up = asyncio.run(main())
        assert status == 400
        assert document["error"]["type"] == "GatewayError"
        assert b"Connection: close" in head
        assert trailing == b""
        assert follow_up[0] == 200

    def test_keep_alive_connection_reuse(self):
        service = _make_service()

        async def main():
            server = GatewayServer(service, config=GatewayConfig(port=0))
            await server.start()
            try:
                reader, writer = await asyncio.open_connection(
                    server.config.host, server.port
                )
                statuses = []
                for _ in range(3):
                    writer.write(
                        b"GET /v1/top?method=CC&k=2 HTTP/1.1\r\n"
                        b"Host: x\r\n\r\n"
                    )
                    await writer.drain()
                    head = await reader.readuntil(b"\r\n\r\n")
                    statuses.append(int(head.split(b" ")[1]))
                    length = int(
                        [
                            line.split(b":")[1]
                            for line in head.split(b"\r\n")
                            if line.lower().startswith(b"content-length")
                        ][0]
                    )
                    await reader.readexactly(length)
                writer.close()
                return statuses
            finally:
                await server.stop()

        assert asyncio.run(main()) == [200, 200, 200]


class TestLiveUpdates:
    def test_concurrent_clients_during_stream_updates(self):
        """Mixed traffic while micro-batches land: every response is
        stamped with a consistent version and matches a direct call."""
        log = EventLog.from_network(toy_network())
        ingestor = StreamIngestor(
            log, methods=("CC",), batch_size=2, bootstrap_size=8
        )
        ingestor.step()  # bootstrap -> version 0
        service = ingestor.service

        async def client(host, port, n, out):
            for _ in range(n):
                status, document = await _get(
                    host, port, "/v1/top?method=CC&k=3"
                )
                assert status == 200
                out.append(document)

        async def main():
            server = GatewayServer(
                service,
                config=GatewayConfig(port=0, update_interval=0.0),
                ingestor=ingestor,
            )
            await server.start()
            responses: list = []
            try:
                await asyncio.gather(
                    *(
                        client(
                            server.config.host, server.port, 6, responses
                        )
                        for _ in range(4)
                    )
                )
            finally:
                await server.stop()
            return responses, server

        responses, server = asyncio.run(main())
        assert len(responses) == 24
        versions = {doc["version"] for doc in responses}
        assert len(versions) >= 1
        # The envelope version always matches the page's own stamp.
        for doc in responses:
            assert doc["result"]["version"] == doc["version"]
        assert server.metrics.updates_applied > 0
        # The final version's pages match a direct call now.
        final = max(versions)
        if service.version == final:
            direct = service.top_k("CC", k=3)
            for doc in responses:
                if doc["version"] == final:
                    assert [
                        e["paper_id"]
                        for e in doc["result"]["entries"]
                    ] == list(direct.paper_ids)


class TestLoadShedding:
    def test_overload_sheds_503(self, monkeypatch):
        service = _make_service()
        real = service.execute_batch

        def slow_execute(queries):
            time.sleep(0.05)
            return real(queries)

        monkeypatch.setattr(service, "execute_batch", slow_execute)

        async def main():
            server = GatewayServer(
                service,
                config=GatewayConfig(
                    port=0, max_inflight=1, max_queue=0
                ),
            )
            await server.start()
            try:
                outcomes = await asyncio.gather(
                    *(
                        _get(
                            server.config.host,
                            server.port,
                            "/v1/top?method=CC&k=2",
                        )
                        for _ in range(6)
                    )
                )
            finally:
                await server.stop()
            return outcomes, server

        outcomes, server = asyncio.run(main())
        statuses = sorted(status for status, _ in outcomes)
        assert 200 in statuses            # someone got served
        assert 503 in statuses            # someone was shed
        shed = [doc for status, doc in outcomes if status == 503]
        assert all(
            doc["error"]["reason"] == "queue-full" for doc in shed
        )
        assert server.metrics.shed_503 == len(shed)

    def test_backend_breakage_answers_500_without_leaking_slots(
        self, monkeypatch
    ):
        """A non-ReproError from the backend must surface as a 500 and
        release its admission slot — not leak until the gateway sheds
        everything as queue-full."""
        service = _make_service()

        def broken_execute(queries):
            raise AttributeError("backend exploded")

        monkeypatch.setattr(service, "execute_batch", broken_execute)

        async def main():
            server = GatewayServer(
                service,
                config=GatewayConfig(port=0, max_inflight=2, max_queue=0),
            )
            await server.start()
            try:
                broken = [
                    await _get(
                        server.config.host, server.port,
                        "/v1/top?method=CC&k=2",
                    )
                    for _ in range(4)  # more failures than capacity
                ]
                active_after = server.admission.active
                monkeypatch.undo()  # heal the backend
                healed = await _get(
                    server.config.host, server.port,
                    "/v1/top?method=CC&k=2",
                )
            finally:
                await server.stop()
            return broken, active_after, healed

        broken, active_after, healed = asyncio.run(main())
        assert [status for status, _ in broken] == [500] * 4
        assert all(
            doc["error"]["type"] == "AttributeError"
            for _, doc in broken
        )
        assert active_after == 0        # every slot released
        assert healed[0] == 200         # not stuck shedding queue-full

    def test_rate_limit_sheds_429(self):
        service = _make_service()

        async def main():
            server = GatewayServer(
                service,
                config=GatewayConfig(
                    port=0, rate_limit=0.001, rate_burst=1
                ),
            )
            await server.start()
            try:
                first = await _get(
                    server.config.host, server.port,
                    "/v1/top?method=CC&k=2",
                )
                second = await _get_raw(
                    server.config.host, server.port,
                    "/v1/top?method=CC&k=2",
                )
                # healthz is never rate limited.
                health = await _get(
                    server.config.host, server.port, "/v1/healthz"
                )
            finally:
                await server.stop()
            return first, second, health

        first, second, health = asyncio.run(main())
        assert first[0] == 200
        status, headers, body = second
        assert status == 429
        assert json.loads(body)["error"]["reason"] == "rate-limited"
        # The shed tells the client when retrying could succeed: the
        # bucket refills at 0.001/s, so the hint is a large integer,
        # never the "retry immediately" a bare 429 implies.
        assert int(headers["retry-after"]) >= 1
        assert health[0] == 200


class TestDrain:
    def test_stop_finishes_inflight_then_refuses(self, monkeypatch):
        service = _make_service()
        real = service.execute_batch

        def slow_execute(queries):
            time.sleep(0.1)
            return real(queries)

        monkeypatch.setattr(service, "execute_batch", slow_execute)

        async def main():
            server = GatewayServer(service, config=GatewayConfig(port=0))
            await server.start()
            host, port = server.config.host, server.port
            inflight = asyncio.ensure_future(
                _get(host, port, "/v1/top?method=CC&k=2")
            )
            await asyncio.sleep(0.03)   # request reaches the executor
            await server.stop()         # drain must wait for it
            status, document = await inflight
            refused = False
            try:
                await _get(host, port, "/v1/healthz")
            except (ConnectionRefusedError, OSError):
                refused = True
            return status, document, refused

        status, document, refused = asyncio.run(main())
        assert status == 200            # the admitted request finished
        assert document["result"]["entries"]
        assert refused                  # the listener is gone

    def test_requests_during_drain_get_503(self):
        service = _make_service()

        async def main():
            server = GatewayServer(service, config=GatewayConfig(port=0))
            await server.start()
            host, port = server.config.host, server.port
            # An open keep-alive connection outlives the listener...
            reader, writer = await asyncio.open_connection(host, port)
            server.admission.start_draining()
            writer.write(
                b"GET /v1/top?method=CC&k=2 HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            await writer.drain()
            head = await reader.readuntil(b"\r\n\r\n")
            status = int(head.split(b" ")[1])
            length = int(
                [
                    line.split(b":")[1]
                    for line in head.split(b"\r\n")
                    if line.lower().startswith(b"content-length")
                ][0]
            )
            document = json.loads(await reader.readexactly(length))
            writer.close()
            await server.stop()
            return status, document, head

        status, document, head = asyncio.run(main())
        assert status == 503
        assert document["error"]["reason"] == "draining"
        assert b"Connection: close" in head
        # Draining sheds carry a Retry-After derived from the
        # remaining drain budget, so well-behaved clients back off
        # instead of hammering a server that is going away.
        assert b"Retry-After: " in head


class TestGatewayThread:
    def test_thread_restarts_on_a_fresh_port_binding(self):
        """stop() re-arms the thread: a second start() must report the
        NEW live port, not the first run's dead one."""
        import urllib.request

        service = _make_service()
        gateway = GatewayThread(service)
        gateway.start()
        first_port = gateway.port
        gateway.stop()
        gateway.start()
        try:
            assert gateway.port is not None
            body = urllib.request.urlopen(
                f"http://127.0.0.1:{gateway.port}/v1/healthz", timeout=10
            ).read()
            assert json.loads(body)["status"] == "ok"
        finally:
            gateway.stop()
        assert first_port is not None  # both runs actually bound

    def test_thread_serves_urllib_and_drains(self):
        import urllib.request

        service = _make_service()
        with GatewayThread(service) as gateway:
            body = urllib.request.urlopen(
                f"http://127.0.0.1:{gateway.port}/v1/top?method=CC&k=2",
                timeout=10,
            ).read()
            document = json.loads(body)
        assert document["version"] == 0
        assert len(document["result"]["entries"]) == 2
        # After the context exits, the port is closed.
        with pytest.raises(Exception):
            urllib.request.urlopen(
                f"http://127.0.0.1:{gateway.port}/v1/healthz", timeout=2
            )


class TestObservability:
    def test_every_error_body_carries_the_response_request_id(
        self, monkeypatch
    ):
        """404/400/429/503/500 JSON bodies all include a ``request_id``
        matching the ``X-Request-Id`` response header."""
        service = _make_service()

        async def main():
            server = GatewayServer(
                service,
                config=GatewayConfig(
                    port=0, rate_limit=0.001, rate_burst=2
                ),
            )
            await server.start()
            host, port = server.config.host, server.port
            try:
                out = {}
                out["404"] = await _get_raw(host, port, "/v1/paper/ZZZ")
                out["400"] = await _get_raw(
                    host, port, "/v1/top?method=NOPE"
                )
                await _get_raw(host, port, "/v1/top?method=CC&k=2")
                out["429"] = await _get_raw(  # top bucket exhausted
                    host, port, "/v1/top?method=CC&k=2"
                )

                def broken(queries):
                    raise AttributeError("backend exploded")

                monkeypatch.setattr(service, "execute_batch", broken)
                out["500"] = await _get_raw(host, port, "/v1/paper/A")
                monkeypatch.undo()
                server.admission.start_draining()
                out["503"] = await _get_raw(
                    host, port, "/v1/compare?methods=CC,PR&k=2"
                )
            finally:
                await server.stop()
            return out

        out = asyncio.run(main())
        seen_ids = set()
        for expected, (status, headers, body) in out.items():
            assert status == int(expected)
            document = json.loads(body)
            rid = headers.get("x-request-id")
            assert rid, f"no X-Request-Id header on the {expected}"
            assert document["error"]["request_id"] == rid
            seen_ids.add(rid)
        # Five requests, five distinct correlation ids.
        assert len(seen_ids) == len(out)

    def test_client_supplied_request_id_is_echoed(self):
        service = _make_service()

        async def main():
            server = GatewayServer(service, config=GatewayConfig(port=0))
            await server.start()
            host, port = server.config.host, server.port
            try:
                ok = await _get_raw(
                    host, port, "/v1/top?method=CC&k=2",
                    extra_headers=[("X-Request-Id", "my-id-42")],
                )
                error = await _get_raw(
                    host, port, "/v1/paper/ZZZ",
                    extra_headers=[("X-Request-Id", "err-id-7")],
                )
                generated = await _get_raw(
                    host, port, "/v1/top?method=CC&k=2"
                )
            finally:
                await server.stop()
            return ok, error, generated

        ok, error, generated = asyncio.run(main())
        assert ok[1]["x-request-id"] == "my-id-42"
        assert error[1]["x-request-id"] == "err-id-7"
        assert json.loads(error[2])["error"]["request_id"] == "err-id-7"
        # Without a client id the gateway mints conn-seq ids itself.
        conn, _, seq = generated[1]["x-request-id"].partition("-")
        assert len(conn) == 16 and seq.isdigit()

    def test_metrics_prometheus_exposition_parses_strictly(self):
        """``/v1/metrics?format=prometheus`` must satisfy the strict
        exposition parser and carry the serving stack's families."""
        service = _make_service()

        async def main():
            server = GatewayServer(service, config=GatewayConfig(port=0))
            await server.start()
            host, port = server.config.host, server.port
            try:
                await _get(host, port, "/v1/top?method=CC&k=3")
                await _get(host, port, "/v1/paper/ZZZ")
                return await _get_raw(
                    host, port, "/v1/metrics?format=prometheus"
                )
            finally:
                await server.stop()

        status, headers, body = asyncio.run(main())
        assert status == 200
        assert headers["content-type"] == (
            "text/plain; version=0.0.4; charset=utf-8"
        )
        families = parse_exposition(body.decode())
        requests = families["repro_gateway_requests_total"]
        assert requests.kind == "counter"
        assert requests.values()[(("endpoint", "top"),)] == 1.0
        responses = families["repro_gateway_responses_total"].values()
        assert responses[(("status", "200"),)] >= 1.0
        assert responses[(("status", "404"),)] == 1.0
        latency = families["repro_gateway_request_latency_seconds"]
        assert latency.kind == "histogram"
        assert latency.values("_count")[(("endpoint", "top"),)] == 1.0
        assert families["repro_gateway_admission_active"].values()[()] == 0
        # Global-registry families ride along: the solver recorded the
        # index builds, the cache its lookups.
        solves = families["repro_solver_solves_total"].values()
        assert sum(solves.values()) >= 1.0
        assert "repro_cache_events_total" in families
        assert families["repro_gateway_draining"].values()[()] == 0

    def test_metrics_default_format_is_still_json(self):
        service = _make_service()

        async def main():
            server = GatewayServer(service, config=GatewayConfig(port=0))
            await server.start()
            try:
                return await _get_raw(
                    server.config.host, server.port, "/v1/metrics"
                )
            finally:
                await server.stop()

        status, headers, body = asyncio.run(main())
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert "requests" in json.loads(body)

    def test_trace_endpoint_serves_the_span_tree(self):
        service = _make_service()
        enable_tracing(capacity=64)
        try:

            async def main():
                server = GatewayServer(
                    service, config=GatewayConfig(port=0)
                )
                await server.start()
                host, port = server.config.host, server.port
                try:
                    ok = await _get_raw(
                        host, port, "/v1/top?method=CC&k=3",
                        extra_headers=[("X-Request-Id", "traced-1")],
                    )
                    return ok, await _get(
                        host, port, "/v1/trace?limit=10"
                    )
                finally:
                    await server.stop()

            ok, (status, document) = asyncio.run(main())
        finally:
            disable_tracing()
        assert ok[0] == 200
        assert status == 200
        assert document["enabled"] is True
        assert document["recorded_total"] >= 1
        traced = [
            trace for trace in document["traces"]
            if trace.get("request_id") == "traced-1"
        ]
        assert len(traced) == 1
        trace = traced[0]
        assert trace["name"] == "gateway.request"
        assert trace["attrs"]["endpoint"] == "top"
        assert trace["attrs"]["status"] == 200

        def names(node):
            yield node["name"]
            for child in node["spans"]:
                yield from names(child)

        seen = set(names(trace))
        # The request's tree spans the whole stack: admission →
        # coalescer → engine batch → shard fan-out.
        for expected in (
            "gateway.admission", "gateway.coalesce", "engine.batch",
            "engine.execute", "engine.shard",
        ):
            assert expected in seen, f"{expected} missing from {seen}"

    def test_trace_endpoint_reports_disabled_state(self):
        service = _make_service()
        disable_tracing()

        async def main():
            server = GatewayServer(service, config=GatewayConfig(port=0))
            await server.start()
            try:
                return await _get(
                    server.config.host, server.port, "/v1/trace"
                )
            finally:
                await server.stop()

        status, document = asyncio.run(main())
        assert status == 200
        assert document == {
            "enabled": False, "recorded_total": 0, "traces": [],
        }

    def test_access_log_is_debug_and_carries_the_request_id(self):
        """Per-request access lines are DEBUG telemetry (metrics do the
        per-request accounting at INFO), and each line correlates with
        the ``X-Request-Id`` the client saw."""
        service = _make_service()

        async def run_one(header_id):
            server = GatewayServer(service, config=GatewayConfig(port=0))
            await server.start()
            try:
                _, headers, _ = await _get_raw(
                    server.config.host,
                    server.port,
                    "/v1/top?method=CC&k=2",
                    extra_headers=(("X-Request-Id", header_id),),
                )
                return headers["x-request-id"]
            finally:
                await server.stop()

        sink = io.StringIO()
        configure_logging("DEBUG", json=True, stream=sink)
        try:
            returned = asyncio.run(run_one("acc-dbg-1"))
            lines = [
                json.loads(line)
                for line in sink.getvalue().splitlines()
            ]
            access = [
                entry for entry in lines if entry["message"] == "request"
            ]
            assert len(access) == 1
            assert access[0]["level"] == "DEBUG"
            assert access[0]["request_id"] == returned == "acc-dbg-1"
            assert access[0]["endpoint"] == "top"
            assert access[0]["status"] == 200
            assert access[0]["ms"] >= 0

            # At INFO the access line is silent: the log is an event
            # stream, not a per-request ledger.
            sink.truncate(0)
            sink.seek(0)
            configure_logging("INFO", json=True, stream=sink)
            asyncio.run(run_one("acc-info-1"))
            assert "request" not in [
                json.loads(line).get("message")
                for line in sink.getvalue().splitlines()
            ]
        finally:
            reset_logging()
