"""Integration tests: full pipelines across modules.

These tests exercise the complete story of the paper on small synthetic
corpora: generate -> split -> rank (all methods) -> evaluate, plus
serialisation round-trips feeding the same pipeline.
"""

import numpy as np
import pytest

from repro.baselines import METHOD_REGISTRY, make_method
from repro.core.attrank import AttRank
from repro.core.variants import AttentionOnly, NoAttention
from repro.eval.metrics import NDCG, SpearmanRho, spearman_rho
from repro.eval.split import split_by_ratio
from repro.io.serialize import load_network, save_network


class TestFullPipeline:
    def test_every_method_scores_every_dataset(self, dblp_tiny):
        """All ten registered methods run end-to-end on a corpus with
        full metadata and produce finite, non-negative scores."""
        split = split_by_ratio(dblp_tiny, 1.6)
        for name in METHOD_REGISTRY:
            method = make_method(name)
            scores = method.scores(split.current)
            assert scores.shape == (split.current.n_papers,)
            assert np.all(np.isfinite(scores))
            assert scores.min() >= 0

    def test_attrank_beats_ablations_on_defaults(self, hepth_split):
        """The paper's core result in miniature, at default parameters."""
        network, sti = hepth_split.current, hepth_split.sti
        full = AttRank(
            alpha=0.2, beta=0.5, gamma=0.3, attention_window=2,
            decay_rate=-0.5,
        )
        no_att = NoAttention(alpha=0.2, decay_rate=-0.5)
        rho_full = spearman_rho(full.scores(network), sti)
        rho_no = spearman_rho(no_att.scores(network), sti)
        assert rho_full > rho_no
        assert rho_full > 0.35  # meaningfully correlated with STI

    def test_attrank_beats_citation_count(self, hepth_split):
        """Age bias: plain citation count must lose clearly."""
        network, sti = hepth_split.current, hepth_split.sti
        attrank = AttRank(
            alpha=0.2, beta=0.5, gamma=0.3, attention_window=2,
            decay_rate=-0.5,
        )
        cc = make_method("CC")
        assert spearman_rho(attrank.scores(network), sti) > spearman_rho(
            cc.scores(network), sti
        )

    def test_ndcg_and_spearman_agree_on_strong_methods(self, hepth_split):
        """A method that is excellent on one metric should not be at the
        bottom on the other (sanity of the evaluation wiring)."""
        network, sti = hepth_split.current, hepth_split.sti
        metric_rho = SpearmanRho()
        metric_ndcg = NDCG(50)
        rhos, ndcgs = {}, {}
        for name in ("CC", "ATT-ONLY", "RAM"):
            scores = make_method(name).scores(network)
            rhos[name] = metric_rho(scores, sti)
            ndcgs[name] = metric_ndcg(scores, sti)
        assert rhos["ATT-ONLY"] > rhos["CC"]
        assert ndcgs["ATT-ONLY"] > ndcgs["CC"]

    def test_round_trip_then_full_evaluation(self, hepth_tiny, tmp_path):
        path = str(tmp_path / "net.npz")
        save_network(hepth_tiny, path)
        reloaded = load_network(path)
        original_split = split_by_ratio(hepth_tiny, 1.6)
        reloaded_split = split_by_ratio(reloaded, 1.6)
        assert np.array_equal(original_split.sti, reloaded_split.sti)
        method = AttentionOnly(attention_window=2)
        assert np.allclose(
            method.scores(original_split.current),
            method.scores(reloaded_split.current),
        )


class TestTuningPipeline:
    def test_tuned_attrank_dominates_tuned_no_att(self, hepth_split):
        """Tuning both over their full grids preserves the paper's
        ordering: AR >= NO-ATT and AR >= ATT-ONLY by construction, and
        the NO-ATT gap is material."""
        from repro.eval.grids import attrank_grid, no_att_grid, att_only_grid
        from repro.eval.tuning import tune_method

        metric = SpearmanRho()
        ar = tune_method("AR", attrank_grid(), hepth_split, metric)
        no_att = tune_method("NO-ATT", no_att_grid(), hepth_split, metric)
        att_only = tune_method(
            "ATT-ONLY", att_only_grid(), hepth_split, metric
        )
        assert ar.best_score >= att_only.best_score
        assert ar.best_score >= no_att.best_score
        assert ar.best_score - no_att.best_score > 0.02

    def test_heatmap_consistent_with_tuning(self, hepth_split):
        """The heatmap's best cell equals grid search over the same
        space (same w fit)."""
        from repro.analysis.heatmap import attention_heatmap
        from repro.core.recency import fit_decay_rate
        from repro.eval.tuning import tune_method

        metric = SpearmanRho()
        sweep = attention_heatmap(hepth_split, metric, windows=(1, 2))
        best = sweep.best_overall()

        decay = fit_decay_rate(hepth_split.current).decay_rate
        grid = [
            {
                "alpha": a,
                "beta": b,
                "gamma": round(1 - a - b, 10),
                "attention_window": float(y),
                "decay_rate": decay,
            }
            for y in (1, 2)
            for a in sweep.alphas
            for b in sweep.betas
            if 0 <= round(1 - a - b, 10) <= 0.9
        ]
        tuned = tune_method("AR", grid, hepth_split, metric)
        assert tuned.best_score == pytest.approx(best["value"], abs=1e-12)


class TestScenarioPipeline:
    def test_attrank_identifies_the_challenger(self):
        """Figure 1b in action: in 1998 the challenger has fewer total
        citations but AttRank ranks it above the incumbent, while plain
        citation count does the opposite."""
        from repro.graph.temporal import snapshot_at
        from repro.synth.scenarios import two_paper_overtaking

        scenario = two_paper_overtaking(seed=7)
        network_1998, _ = snapshot_at(scenario.network, 1998.9)
        incumbent = network_1998.index_of(scenario.incumbent_id)
        challenger = network_1998.index_of(scenario.challenger_id)

        cc = make_method("CC").scores(network_1998)
        assert cc[incumbent] > cc[challenger]  # incumbent leads on totals

        attrank = AttRank(
            alpha=0.1, beta=0.7, gamma=0.2, attention_window=2,
            decay_rate=-0.5,
        )
        scores = attrank.scores(network_1998)
        assert scores[challenger] > scores[incumbent]
