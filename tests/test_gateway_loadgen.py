"""Tests for the gateway load generator and its verification replica."""

import pytest

from repro.errors import GatewayError
from repro.gateway import GatewayConfig
from repro.gateway.loadgen import run_load_over_log, run_load_static
from repro.serve import QueryEngine, RankingService, ScoreIndex, ShardedScoreIndex
from repro.stream import EventLog
from repro.synth import toy_network


@pytest.fixture(scope="module")
def tiny_log(hepth_tiny_module):
    return EventLog.from_network(hepth_tiny_module)


@pytest.fixture(scope="module")
def hepth_tiny_module():
    from repro.synth.profiles import generate_dataset

    return generate_dataset("hep-th", size="tiny", seed=7)


class TestRunLoadOverLog:
    def test_acceptance_run_verifies_every_response(self, tiny_log):
        """The ISSUE acceptance property: >= 4 concurrent clients,
        mixed endpoints, stream updates mid-run, every response
        bit-identical to a direct service call at its version."""
        report = run_load_over_log(
            tiny_log,
            ("AR", "CC"),
            clients=4,
            requests_per_client=15,
            batch_size=64,
            bootstrap_events=len(tiny_log) // 2,
        )
        assert report["requests"] == 60
        assert report["errors_5xx"] == 0
        assert report["status_counts"] == {"200": 60}
        assert report["identical_rankings"] is True
        assert report["verified_responses"] == 60
        assert report["mismatched_responses"] == 0
        # Updates really landed mid-run and produced version churn.
        assert report["updates_applied"] >= 1
        assert report["requests_per_second"] > 0
        latency = report["latency"]
        assert 0 < latency["p50_ms"] <= latency["p95_ms"] <= latency["p99_ms"]
        assert report["coalescing"]["requests"] == 60
        assert report["result_cache"]["hits"] + report["result_cache"][
            "misses"
        ] > 0

    def test_sharded_serving_state(self, tiny_log):
        report = run_load_over_log(
            tiny_log,
            ("CC",),
            clients=4,
            requests_per_client=6,
            batch_size=128,
            bootstrap_events=len(tiny_log) // 2,
            shards=3,
        )
        assert report["identical_rankings"] is True
        assert report["errors_5xx"] == 0

    def test_validation(self, tiny_log):
        with pytest.raises(GatewayError):
            run_load_over_log(tiny_log, ("CC",), clients=0)
        with pytest.raises(GatewayError):
            run_load_over_log(
                tiny_log, ("CC",), requests_per_client=0
            )


class TestRunLoadStatic:
    def test_service_backend_verifies(self):
        index = ScoreIndex(toy_network())
        index.add_method("CC")
        index.add_method("PR")
        report = run_load_static(
            RankingService(index),
            ("CC", "PR"),
            clients=3,
            requests_per_client=10,
        )
        assert report["errors_5xx"] == 0
        assert report["identical_rankings"] is True
        assert report["updates_applied"] == 0
        assert report["versions_observed"] == [0]

    def test_detached_engine_backend(self, tmp_path):
        index = ScoreIndex(toy_network())
        index.add_method("CC")
        store_dir = str(tmp_path / "store")
        ShardedScoreIndex.from_index(index, n_shards=2).save(store_dir)
        engine = QueryEngine(ShardedScoreIndex.load(store_dir))
        report = run_load_static(
            engine, ("CC",), clients=2, requests_per_client=8,
            verify=False,
        )
        assert report["errors_5xx"] == 0
        assert report["requests"] == 16
        # No verification possible on a detached store.
        assert report["verified_responses"] == 0

    def test_detached_store_with_empty_shards(self, tmp_path):
        """More shards than papers leaves some shards empty; the year
        span must come from the populated ones, not crash on min()."""
        index = ScoreIndex(toy_network())
        index.add_method("CC")
        store_dir = str(tmp_path / "sparse")
        ShardedScoreIndex.from_index(index, n_shards=16).save(store_dir)
        engine = QueryEngine(ShardedScoreIndex.load(store_dir))
        report = run_load_static(
            engine, ("CC",), clients=2, requests_per_client=4,
            verify=False,
        )
        assert report["errors_5xx"] == 0
        assert report["requests"] == 8

    def test_rejects_unknown_backend(self):
        with pytest.raises(GatewayError, match="backend"):
            run_load_static(object(), ("CC",))

    def test_shedding_config_counts_5xx(self):
        """With capacity 1/0 and several clients, shed 503s surface in
        the report as 5xx (exactly what the CI smoke gate watches)."""
        index = ScoreIndex(toy_network())
        index.add_method("CC")
        report = run_load_static(
            RankingService(index),
            ("CC",),
            clients=4,
            requests_per_client=10,
            config=GatewayConfig(port=0, max_inflight=1, max_queue=0),
            verify=False,
        )
        # Shed responses count against the 5xx gate; under this
        # extreme config at least the totals must reconcile.
        assert report["requests"] == 40
        assert report["shed_503"] == report["errors_5xx"]
        total = sum(report["status_counts"].values())
        assert total == 40
