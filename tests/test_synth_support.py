"""Unit tests for synth authors/venues, profiles, scenarios and RNG."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.synth.authors import (
    AuthorConfig,
    VenueConfig,
    assign_authors,
    assign_venues,
)
from repro.synth.profiles import (
    DATASET_NAMES,
    DATASET_PROFILES,
    generate_dataset,
    profile_for,
)
from repro.synth.rng import make_rng, spawn_rngs
from repro.synth.scenarios import toy_network, two_paper_overtaking


class TestAuthors:
    def test_every_paper_has_authors(self):
        rng = np.random.default_rng(0)
        teams = assign_authors(200, AuthorConfig(), rng)
        assert len(teams) == 200
        assert all(len(team) >= 1 for team in teams)

    def test_productivity_is_heavy_tailed(self):
        rng = np.random.default_rng(0)
        teams = assign_authors(
            500, AuthorConfig(new_author_probability=0.3), rng
        )
        counts: dict[int, int] = {}
        for team in teams:
            for author in team:
                counts[author] = counts.get(author, 0) + 1
        values = np.array(sorted(counts.values()))
        assert values.max() >= 5 * np.median(values)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            AuthorConfig(mean_team_size=0.5)
        with pytest.raises(ConfigurationError):
            AuthorConfig(new_author_probability=0.0)


class TestVenues:
    def test_assignment_shape_and_range(self):
        rng = np.random.default_rng(0)
        venues = assign_venues(300, VenueConfig(n_venues=20), rng)
        assert venues.shape == (300,)
        assert venues.max() < 20
        assert venues.min() >= -1

    def test_unknown_fraction(self):
        rng = np.random.default_rng(0)
        venues = assign_venues(
            2000, VenueConfig(unknown_fraction=0.25), rng
        )
        unknown = (venues == -1).mean()
        assert 0.15 < unknown < 0.35

    def test_zipf_concentration(self):
        rng = np.random.default_rng(0)
        venues = assign_venues(
            2000,
            VenueConfig(n_venues=50, zipf_exponent=1.3, unknown_fraction=0.0),
            rng,
        )
        top_share = (venues == 0).mean()
        assert top_share > 1.0 / 50 * 3

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            VenueConfig(n_venues=0)
        with pytest.raises(ConfigurationError):
            VenueConfig(unknown_fraction=1.0)


class TestProfiles:
    def test_four_paper_datasets(self):
        assert DATASET_NAMES == ("hep-th", "aps", "pmc", "dblp")
        assert set(DATASET_PROFILES) == set(DATASET_NAMES)

    def test_profile_lookup_aliases(self):
        assert profile_for("HEP-TH").name == "hep-th"
        assert profile_for("hepth").name == "hep-th"
        assert profile_for("DBLP").name == "dblp"

    def test_unknown_profile(self):
        with pytest.raises(ConfigurationError, match="unknown dataset"):
            profile_for("mag")

    def test_paper_w_values_match_section_42(self):
        assert DATASET_PROFILES["hep-th"].paper_w == -0.48
        assert DATASET_PROFILES["aps"].paper_w == -0.12
        assert DATASET_PROFILES["pmc"].paper_w == -0.16
        assert DATASET_PROFILES["dblp"].paper_w == -0.16

    def test_generate_dataset_sizes(self):
        tiny = generate_dataset("hep-th", size="tiny", seed=0)
        assert tiny.n_papers == 750

    def test_generate_dataset_exact_count(self):
        network = generate_dataset("pmc", n_papers=600, seed=0)
        assert network.n_papers == 600

    def test_generate_dataset_unknown_size(self):
        with pytest.raises(ConfigurationError, match="unknown size"):
            generate_dataset("pmc", size="huge")

    def test_default_seeds_differ_across_datasets(self):
        a = generate_dataset("hep-th", size="tiny")
        b = generate_dataset("hep-th", size="tiny")
        assert np.array_equal(a.citing, b.citing)  # same default seed

    def test_hepth_ages_faster_than_aps(self):
        """The paper's Figure 1a: hep-th citations arrive much sooner
        than APS citations."""
        from repro.graph.statistics import citation_age_distribution

        hepth = generate_dataset("hep-th", size="tiny", seed=1)
        aps = generate_dataset("aps", size="tiny", seed=1)
        hep_dist = citation_age_distribution(hepth, max_age=10)
        aps_dist = citation_age_distribution(aps, max_age=10)
        assert hep_dist[:3].sum() > aps_dist[:3].sum()


class TestScenarios:
    def test_toy_network_shape(self):
        network = toy_network()
        assert network.n_papers == 8
        assert network.n_citations == 13

    def test_overtaking_has_crossover(self):
        scenario = two_paper_overtaking(seed=7)
        assert scenario.crossover_year is not None
        assert 1997 < scenario.crossover_year <= 2001

    def test_overtaking_citation_counts(self):
        """At the end, the incumbent still has more total citations but
        the challenger has higher short-term impact — the Figure 1b
        motivation."""
        from repro.graph.statistics import yearly_citations

        scenario = two_paper_overtaking(seed=7)
        network = scenario.network
        incumbent = network.index_of(scenario.incumbent_id)
        challenger = network.index_of(scenario.challenger_id)
        # Total citations: incumbent ahead (head start since 1990).
        assert network.in_degree[incumbent] > 0
        # Last full year: challenger ahead (it overtook).
        _, inc_counts = yearly_citations(network, incumbent)
        _, chal_counts = yearly_citations(
            network, challenger,
            first_year=int(network.publication_times[incumbent]),
            last_year=2001,
        )
        assert chal_counts[-1] > inc_counts[-1]

    def test_overtaking_validation(self):
        with pytest.raises(ConfigurationError):
            two_paper_overtaking(incumbent_year=2000, challenger_year=1990)
        with pytest.raises(ConfigurationError):
            two_paper_overtaking(challenger_year=1997, last_year=1997)

    def test_overtaking_network_is_time_consistent(self):
        scenario = two_paper_overtaking(seed=3)
        scenario.network.validate(require_time_order=True)


class TestRng:
    def test_make_rng_accepts_generator(self):
        generator = np.random.default_rng(0)
        assert make_rng(generator) is generator

    def test_make_rng_from_int(self):
        a = make_rng(3).random(5)
        b = make_rng(3).random(5)
        assert np.array_equal(a, b)

    def test_spawn_independent_streams(self):
        streams = spawn_rngs(0, 3)
        values = [s.random(4) for s in streams]
        assert not np.array_equal(values[0], values[1])
        # Deterministic across calls.
        again = [s.random(4) for s in spawn_rngs(0, 3)]
        assert np.array_equal(values[0], again[0])
