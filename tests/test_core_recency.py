"""Unit tests for repro.core.recency (Equation 3 and the w fit)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, EvaluationError
from repro.core.recency import fit_decay_rate, recency_vector
from tests.conftest import assert_probability_vector


class TestRecencyVector:
    def test_probability_vector(self, toy):
        assert_probability_vector(recency_vector(toy, -0.5))

    def test_newer_papers_score_higher(self, toy):
        vector = recency_vector(toy, -0.5)
        h = toy.index_of("H")  # newest
        a = toy.index_of("A")  # oldest
        assert vector[h] > vector[a]

    def test_exact_exponential_ratios(self, chain):
        # Ages 3, 2, 1, 0 at w = -1: ratios must be e^-1 apart.
        vector = recency_vector(chain, -1.0)
        ratios = vector[1:] / vector[:-1]
        assert np.allclose(ratios, np.e)

    def test_w_zero_gives_uniform(self, toy):
        """The paper notes w = 0 (with beta = 0) recovers PageRank; the
        recency vector must then be uniform."""
        vector = recency_vector(toy, 0.0)
        assert np.allclose(vector, 1.0 / toy.n_papers)

    def test_positive_w_rejected(self, toy):
        with pytest.raises(ConfigurationError):
            recency_vector(toy, 0.2)

    def test_explicit_now(self, toy):
        later = recency_vector(toy, -1.0, now=2010.0)
        assert_probability_vector(later)

    def test_numerically_stable_on_long_spans(self):
        from repro.graph.citation_network import CitationNetwork

        network = CitationNetwork(
            ["old", "new"], [1000.0, 2000.0], [], []
        )
        vector = recency_vector(network, -1.0)
        assert_probability_vector(vector)
        assert vector[1] == pytest.approx(1.0)


class TestFitDecayRate:
    def test_exact_exponential_recovered(self):
        """A hand-built network whose citation ages are exactly
        geometric must recover the decay rate with r^2 = 1."""
        from repro.graph.builder import NetworkBuilder

        w_true = -0.5
        builder = NetworkBuilder()
        builder.add_paper("root", 2000.0)
        serial = 0
        # number of citations at age n proportional to exp(w*n)
        for age in range(1, 8):
            count = int(round(1000 * np.exp(w_true * age)))
            for _ in range(count):
                serial += 1
                builder.add_paper(
                    f"c{serial}", 2000.0 + age, references=["root"]
                )
        fit = fit_decay_rate(builder.build(), max_age=7, tail_start=1)
        assert fit.decay_rate == pytest.approx(w_true, abs=0.02)
        assert fit.r_squared > 0.999

    def test_fit_on_synthetic_hepth(self, hepth_tiny):
        """The calibrated hep-th profile must fit a clearly negative w
        in the vicinity of the paper's -0.48."""
        fit = fit_decay_rate(hepth_tiny)
        assert -1.0 < fit.decay_rate < -0.2

    def test_tail_start_override(self, hepth_tiny):
        fit = fit_decay_rate(hepth_tiny, tail_start=2)
        assert fit.ages[0] == 2

    def test_bad_tail_start_rejected(self, hepth_tiny):
        with pytest.raises(ConfigurationError):
            fit_decay_rate(hepth_tiny, max_age=10, tail_start=11)

    def test_too_few_points_raises(self, chain):
        # All chain citations have age exactly 1: one positive point.
        with pytest.raises(EvaluationError):
            fit_decay_rate(chain, max_age=5)

    def test_fit_never_returns_positive_rate(self, star):
        # Star ages 1..5, flat-ish counts; the clamp guards w <= 0.
        fit = fit_decay_rate(star, max_age=5)
        assert fit.decay_rate <= 0
