"""Unit tests for CitationCount, PageRank and the method registry."""

import numpy as np
import pytest

from repro.baselines import METHOD_REGISTRY, make_method
from repro.baselines.citation_count import CitationCount
from repro.baselines.pagerank import PageRank
from repro.errors import ConfigurationError
from tests.conftest import assert_probability_vector


class TestCitationCount:
    def test_equals_in_degree(self, toy):
        scores = CitationCount().scores(toy)
        assert np.array_equal(scores, toy.in_degree.astype(float))

    def test_ranking_most_cited_first(self, toy):
        ranking = CitationCount().rank(toy)
        assert toy.id_of(int(ranking[0])) == "A"

    def test_no_params(self):
        assert dict(CitationCount().params()) == {}


class TestPageRank:
    def test_probability_vector(self, toy):
        assert_probability_vector(PageRank(alpha=0.5).scores(toy))

    def test_matches_networkx(self, hepth_tiny):
        """Cross-check against networkx's PageRank on the reversed graph
        (networkx propagates along edges; our S propagates citing -> cited)."""
        import networkx as nx

        alpha = 0.5
        ours = PageRank(alpha=alpha, tol=1e-12).scores(hepth_tiny)
        graph = hepth_tiny.to_networkx()
        theirs_dict = nx.pagerank(graph, alpha=alpha, tol=1e-12, max_iter=500)
        theirs = np.array([theirs_dict[i] for i in range(hepth_tiny.n_papers)])
        assert np.allclose(ours, theirs, atol=1e-6)

    def test_uniform_on_edgeless_network(self, two_dangling):
        scores = PageRank(alpha=0.85).scores(two_dangling)
        assert np.allclose(scores, 0.5)

    def test_alpha_zero_is_uniform(self, toy):
        scores = PageRank(alpha=0.0).scores(toy)
        assert np.allclose(scores, 1.0 / toy.n_papers)

    def test_alpha_validated(self):
        with pytest.raises(ConfigurationError):
            PageRank(alpha=1.0)
        with pytest.raises(ConfigurationError):
            PageRank(alpha=-0.1)

    def test_age_bias(self, hepth_tiny):
        """The motivation for time-aware methods: PageRank mass sits on
        old papers (they had time to accumulate citations)."""
        scores = PageRank(alpha=0.5).scores(hepth_tiny)
        ages = hepth_tiny.ages()
        old_mass = scores[ages > ages.mean()].sum()
        young_mass = scores[ages <= ages.mean()].sum()
        # Old papers are fewer but hold disproportionate mass per paper.
        old_count = (ages > ages.mean()).sum()
        young_count = (ages <= ages.mean()).sum()
        assert old_mass / old_count > young_mass / young_count


class TestRegistry:
    def test_all_labels_present(self):
        assert set(METHOD_REGISTRY) == {
            "CC", "PR", "CR", "FR", "RAM", "ECM", "WSDM",
            "AR", "NO-ATT", "ATT-ONLY", "KATZ", "HITS",
        }

    def test_make_method_case_insensitive(self):
        assert make_method("ram", gamma=0.3).name == "RAM"

    def test_make_method_passes_params(self):
        method = make_method("CR", alpha=0.3, tau_dir=4.0)
        assert method.params()["tau_dir"] == 4.0

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown method"):
            make_method("nope")

    def test_labels_match_instances(self):
        for label, cls in METHOD_REGISTRY.items():
            assert cls.name == label
