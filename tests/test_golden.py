"""Golden regression fixtures: pinned score vectors for every method.

``tests/fixtures/golden/`` commits a small frozen citation network
(with author and venue metadata, so the metadata-hungry baselines run
too) together with the score vector each golden method produced when
the fixture was generated.  This test recomputes the scores and fails
with a per-method diff when any numerical path drifts — solver
changes, operator refactors, or method re-implementations all have to
*intentionally* regenerate the fixture
(``tests/fixtures/golden/regenerate.py``) rather than drift silently.

Comparisons use a tight tolerance (rtol 1e-9 / atol 1e-12) instead of
bit equality: libm differences across platforms can legitimately move
the last bits of ``exp``/``log``-derived values, and the point of the
fixture is catching algorithmic drift, not glibc upgrades.  Rankings,
however, must match exactly.
"""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.baselines import make_method
from repro.graph.citation_network import CitationNetwork
from repro.ranking import ranking_from_scores

FIXTURE_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "fixtures", "golden"
)

RTOL = 1e-9
ATOL = 1e-12


def _load_json(name: str):
    with open(os.path.join(FIXTURE_DIR, name), encoding="utf-8") as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def golden_network() -> CitationNetwork:
    payload = _load_json("network.json")
    return CitationNetwork(
        paper_ids=payload["paper_ids"],
        publication_times=payload["publication_times"],
        citing=payload["citing"],
        cited=payload["cited"],
        paper_authors=[tuple(a) for a in payload["paper_authors"]],
        paper_venues=payload["paper_venues"],
    )


@pytest.fixture(scope="module")
def golden_scores() -> dict[str, np.ndarray]:
    return {
        label: np.asarray(values, dtype=np.float64)
        for label, values in _load_json("scores.json").items()
    }


def test_fixture_shape(golden_network, golden_scores):
    """The fixture itself must stay internally consistent."""
    assert golden_network.n_papers == 120
    assert golden_network.has_authors and golden_network.has_venues
    assert set(golden_scores) == {"AR", "PR", "CR", "FR", "WSDM", "RAM", "ECM"}
    for label, vector in golden_scores.items():
        assert vector.shape == (golden_network.n_papers,), label
        assert np.all(np.isfinite(vector)), label


@pytest.mark.parametrize(
    "label", ["AR", "PR", "CR", "FR", "WSDM", "RAM", "ECM"]
)
def test_method_matches_golden(label, golden_network, golden_scores):
    expected = golden_scores[label]
    actual = make_method(label).scores(golden_network)
    if not np.allclose(actual, expected, rtol=RTOL, atol=ATOL):
        diff = np.abs(actual - expected)
        worst = np.argsort(-diff)[:5]
        lines = [
            f"{label}: scores drifted from the golden fixture "
            f"(max abs diff {diff.max():.3e} at "
            f"{int(np.argmax(diff))}, {int((diff > ATOL).sum())} of "
            f"{diff.size} entries beyond atol).",
            "worst entries (index: golden -> recomputed):",
        ]
        lines += [
            f"  {int(i)} ({golden_network.id_of(int(i))}): "
            f"{expected[i]!r} -> {actual[i]!r}"
            for i in worst
        ]
        lines.append(
            "If this change is intentional, regenerate via "
            "PYTHONPATH=src python tests/fixtures/golden/regenerate.py"
        )
        pytest.fail("\n".join(lines))
    # Even inside tolerance, the induced ranking must not move at all.
    np.testing.assert_array_equal(
        ranking_from_scores(actual),
        ranking_from_scores(expected),
        err_msg=f"{label}: ranking permutation drifted",
    )
