"""Unit tests for repro.serve.shm — the shared-memory score store.

Everything here runs in ONE process: the generation protocol is pure
shared-state bookkeeping, so publisher and reader can share an address
space and the assertions stay fast and deterministic.  The genuinely
cross-process behaviour (fork, SO_REUSEPORT, supervisor restarts) is
covered by tests/test_gateway_workers.py and the `worker` chaos
scenario.
"""

import multiprocessing
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.errors import SharedStoreError
from repro.serve import ScoreIndex, ShardedScoreIndex
from repro.serve.shm import (
    GenerationBoard,
    SharedStorePublisher,
    SharedStoreReader,
    _unlink,
    attach_snapshot,
    board_name,
    export_snapshot,
    iter_repro_segments,
    new_session,
    segment_name,
)
from repro.synth import toy_network


def _sharded(n_shards=2):
    index = ScoreIndex(toy_network())
    index.add_method("CC")
    index.add_method("PR")
    return ShardedScoreIndex.from_index(index, n_shards=n_shards)


def _lock():
    return multiprocessing.get_context("fork").Lock()


@pytest.fixture(autouse=True)
def _no_leaked_segments():
    """Every test must leave /dev/shm exactly as it found it."""
    before = set(iter_repro_segments())
    yield
    leaked = set(iter_repro_segments()) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def _assert_snapshots_equal(original, loaded):
    """Compare inside one frame so no view outlives the caller's close."""
    assert loaded.version == original.version
    assert loaded.labels == original.labels
    assert loaded.n_papers == original.n_papers
    assert loaded.n_shards == original.n_shards
    assert loaded.partitioner == original.partitioner
    for shard_id in range(original.n_shards):
        ours, theirs = original.shard(shard_id), loaded.shard(shard_id)
        assert theirs.paper_ids == ours.paper_ids
        assert np.array_equal(theirs.global_indices, ours.global_indices)
        assert np.array_equal(theirs.times, ours.times)
        for label in original.labels:
            assert np.array_equal(theirs.scores[label], ours.scores[label])


class TestSegmentRoundTrip:
    def test_export_attach_is_bit_identical(self):
        store = _sharded()
        original = store.snapshot()
        name = segment_name(new_session(), 0)
        shm = export_snapshot(name, original)
        try:
            mapping, loaded = attach_snapshot(name)
            try:
                _assert_snapshots_equal(original, loaded)
            finally:
                del loaded
                mapping.close()
        finally:
            shm.close()
            _unlink(name)

    def test_attached_columns_are_zero_copy_views(self):
        store = _sharded(n_shards=1)
        name = segment_name(new_session(), 0)
        shm = export_snapshot(name, store.snapshot())
        try:
            mapping, loaded = attach_snapshot(name)
            try:
                # A view over the shared pages, not a copy (checked in
                # a helper frame so no inspection local — including the
                # hidden ones pytest's assertion rewriting introduces —
                # outlives the close below).
                self._assert_is_view(loaded.shard(0).scores["CC"])
            finally:
                del loaded
                mapping.close()
        finally:
            shm.close()
            _unlink(name)

    @staticmethod
    def _assert_is_view(scores):
        if scores.flags.owndata:
            raise AssertionError("scores column was copied, not mapped")
        base = scores
        while isinstance(base, np.ndarray) and base.base is not None:
            base = base.base
        # np.frombuffer chains bottom out in the segment's memoryview;
        # a copy would own its data and stop at an ndarray instead.
        if not isinstance(base, memoryview):
            raise AssertionError("view chain does not end in the mapping")

    def test_bad_magic_is_a_typed_error(self):
        name = segment_name(new_session(), 0)
        shm = shared_memory.SharedMemory(
            name=name, create=True, size=64
        )
        try:
            shm.buf[:8] = b"NOTREPRO"
            with pytest.raises(SharedStoreError, match="bad magic"):
                attach_snapshot(name)
        finally:
            shm.close()
            shm.unlink()

    def test_missing_segment_is_a_typed_error(self):
        with pytest.raises(SharedStoreError, match="does not exist"):
            attach_snapshot(segment_name(new_session(), 99))


class TestGenerationBoard:
    def test_publish_acquire_release_lifecycle(self):
        session, lock = new_session(), _lock()
        board = GenerationBoard.create(session, lock)
        try:
            assert board.current == -1
            with pytest.raises(SharedStoreError, match="no generation"):
                board.acquire()
            export_snapshot(
                segment_name(session, 0), _sharded().snapshot()
            ).close()
            board.publish(0)
            assert board.current == 0
            generation = board.acquire()
            assert generation == 0
            assert board.generations()[0]["readers"] == 1
            board.release(0)
            assert board.generations()[0]["readers"] == 0
        finally:
            board.destroy()

    def test_retired_generation_unlinked_by_last_reader(self):
        session, lock = new_session(), _lock()
        board = GenerationBoard.create(session, lock)
        store = _sharded()
        try:
            export_snapshot(
                segment_name(session, 0), store.snapshot()
            ).close()
            board.publish(0)
            board.acquire()  # a reader pins gen 0
            export_snapshot(
                segment_name(session, 1), store.snapshot()
            ).close()
            board.publish(1)
            # Pinned, so retired but not unlinked yet.
            assert segment_name(session, 0) in set(iter_repro_segments())
            assert board.generations()[0]["retired"] == 1
            board.release(0)  # last reader drops it -> unlink
            assert segment_name(session, 0) not in set(
                iter_repro_segments()
            )
            assert 0 not in board.generations()
        finally:
            board.destroy()

    def test_unpinned_generation_unlinked_at_publish(self):
        session, lock = new_session(), _lock()
        board = GenerationBoard.create(session, lock)
        store = _sharded()
        try:
            export_snapshot(
                segment_name(session, 0), store.snapshot()
            ).close()
            board.publish(0)
            export_snapshot(
                segment_name(session, 1), store.snapshot()
            ).close()
            board.publish(1)  # nobody read gen 0: dropped right here
            assert segment_name(session, 0) not in set(
                iter_repro_segments()
            )
        finally:
            board.destroy()

    def test_board_full_is_a_typed_error(self):
        session, lock = new_session(), _lock()
        board = GenerationBoard.create(session, lock)
        store = _sharded(n_shards=1)
        try:
            for generation in range(16):  # every slot pinned forever
                export_snapshot(
                    segment_name(session, generation), store.snapshot()
                ).close()
                board.publish(generation)
                board.acquire()
            export_snapshot(
                segment_name(session, 16), store.snapshot()
            ).close()
            with pytest.raises(SharedStoreError, match="board full"):
                board.publish(16)
        finally:
            # The rejected generation never made it onto the board, so
            # destroy() cannot know about its segment.
            _unlink(segment_name(session, 16))
            board.destroy()

    def test_attach_rejects_non_board_segment(self):
        session, lock = new_session(), _lock()
        shm = shared_memory.SharedMemory(
            name=board_name(session), create=True, size=1024
        )
        try:
            with pytest.raises(SharedStoreError, match="not a generation"):
                GenerationBoard.attach(session, lock)
        finally:
            shm.close()
            shm.unlink()

    def test_destroy_leaves_dev_shm_empty(self):
        session, lock = new_session(), _lock()
        board = GenerationBoard.create(session, lock)
        export_snapshot(
            segment_name(session, 0), _sharded().snapshot()
        ).close()
        board.publish(0)
        board.acquire()  # destroy must sweep even pinned generations
        board.destroy()
        assert not [
            name for name in iter_repro_segments() if session in name
        ]


class TestPublisherReader:
    def test_reader_duck_types_the_shard_store(self):
        store = _sharded()
        with SharedStorePublisher() as publisher:
            publisher.publish(store.snapshot())
            reader = SharedStoreReader(publisher.session, publisher.lock)
            try:
                assert reader.version == store.version
                assert reader.n_shards == store.n_shards
                assert reader.n_papers == store.n_papers
                assert reader.labels == store.snapshot().labels
                assert reader.partitioner == store.partitioner
                assert np.array_equal(
                    reader.snapshot().shard(0).scores["CC"],
                    store.snapshot().shard(0).scores["CC"],
                )
            finally:
                reader.close()

    def test_reader_follows_generation_swaps(self):
        store = _sharded()
        with SharedStorePublisher() as publisher:
            assert publisher.publish(store.snapshot()) == 0
            reader = SharedStoreReader(publisher.session, publisher.lock)
            try:
                assert reader.generation == 0
                old_scores = reader.snapshot().shard(0).scores["CC"]
                assert publisher.publish(store.snapshot()) == 1
                # The peek on the next snapshot() call repins.
                assert reader.snapshot().version == store.version
                assert reader.generation == 1
                # The superseded view stays readable until dropped —
                # a reader mid-batch never sees its arrays vanish.
                assert np.array_equal(
                    old_scores,
                    reader.snapshot().shard(0).scores["CC"],
                )
            finally:
                reader.close()
            assert publisher.published == 2

    def test_close_then_destroy_leaves_no_segments(self):
        store = _sharded()
        publisher = SharedStorePublisher()
        session = publisher.session
        publisher.publish(store.snapshot())
        reader = SharedStoreReader(session, publisher.lock)
        reader.snapshot()
        reader.close()
        publisher.close()
        assert not [
            name for name in iter_repro_segments() if session in name
        ]
