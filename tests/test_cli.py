"""Smoke and behaviour tests for the command-line interface."""

import json
import os

import pytest

import repro
from repro.cli import main
from repro.io.serialize import save_network


@pytest.fixture
def toy_file(toy, tmp_path):
    path = str(tmp_path / "toy.npz")
    save_network(toy, path)
    return path


@pytest.fixture(scope="module")
def hepth_file(tmp_path_factory):
    from repro.synth.profiles import generate_dataset

    path = str(tmp_path_factory.mktemp("nets") / "hepth.npz")
    save_network(generate_dataset("hep-th", size="tiny", seed=42), path)
    return path


class TestGenerate:
    def test_generate_writes_file(self, tmp_path, capsys):
        out = str(tmp_path / "net.npz")
        code = main(
            ["generate", "hep-th", out, "--size", "tiny", "--seed", "1"]
        )
        assert code == 0
        assert os.path.exists(out)
        assert "wrote" in capsys.readouterr().out


class TestSummarize:
    def test_summarize_input(self, toy_file, capsys):
        assert main(["summarize", "--input", toy_file]) == 0
        out = capsys.readouterr().out
        assert "papers" in out and "8" in out

    def test_summarize_generated(self, capsys):
        code = main(
            ["summarize", "--dataset", "hep-th", "--size", "tiny",
             "--seed", "1"]
        )
        assert code == 0
        assert "citations" in capsys.readouterr().out


class TestRank:
    def test_rank_default_method(self, hepth_file, capsys):
        assert main(["rank", "--input", hepth_file, "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "AR(" in out
        assert len([l for l in out.splitlines() if l.startswith(" ") or l]) >= 5

    def test_rank_specific_method(self, toy_file, capsys):
        assert main(
            ["rank", "--input", toy_file, "--method", "CC", "--top", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "A" in out  # most-cited toy paper


class TestEvaluate:
    def test_evaluate_runs(self, hepth_file, capsys):
        code = main(
            [
                "evaluate", "--input", hepth_file,
                "--methods", "RAM", "ATT-ONLY",
                "--ratio", "1.6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "spearman" in out and "RAM" in out


class TestHorizons:
    def test_horizons_table(self, hepth_file, capsys):
        assert main(["horizons", "--input", hepth_file]) == 0
        out = capsys.readouterr().out
        assert "test ratio" in out and "2" in out


class TestPopular:
    def test_popular(self, hepth_file, capsys):
        code = main(
            ["popular", "--input", hepth_file, "--k", "50"]
        )
        assert code == 0
        assert "recently popular" in capsys.readouterr().out


class TestVersion:
    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        assert repro.__version__ in capsys.readouterr().out


def _ranked_papers(output: str) -> list[str]:
    """Extract the paper-id column from a rank/query table."""
    rows = []
    for line in output.splitlines():
        parts = line.split()
        if len(parts) >= 4 and parts[0].isdigit():
            rows.append(parts[1])
    return rows


class TestServe:
    @pytest.fixture
    def index_file(self, hepth_file, tmp_path_factory, capsys):
        path = str(tmp_path_factory.mktemp("serve") / "index.npz")
        assert main(
            ["index", "--input", hepth_file, "--output", path,
             "--methods", "AR", "PR", "CC"]
        ) == 0
        capsys.readouterr()
        return path

    def test_index_reports_solves(self, hepth_file, tmp_path, capsys):
        out_path = str(tmp_path / "index.npz")
        code = main(
            ["index", "--input", hepth_file, "--output", out_path,
             "--methods", "PR", "CC"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert os.path.exists(out_path)
        assert "solved PR" in out and "closed form" in out
        assert "wrote index v0" in out

    def test_query_matches_batch_rank(self, hepth_file, index_file, capsys):
        """Acceptance: query == rank top-k on an unchanged snapshot."""
        assert main(
            ["rank", "--input", hepth_file, "--method", "AR", "--top", "10"]
        ) == 0
        batch = _ranked_papers(capsys.readouterr().out)
        assert main(
            ["query", "--index", index_file, "--methods", "AR",
             "--top", "10"]
        ) == 0
        served = _ranked_papers(capsys.readouterr().out)
        assert served == batch
        assert len(served) == 10

    def test_query_pagination_and_year_filter(self, index_file, capsys):
        assert main(
            ["query", "--index", index_file, "--methods", "CC",
             "--top", "3", "--offset", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "rows 4-6" in out
        assert main(
            ["query", "--index", index_file, "--methods", "CC",
             "--top", "3", "--year-min", "1996", "--year-max", "1999"]
        ) == 0
        out = capsys.readouterr().out
        assert "years [1996, 1999]" in out
        assert _ranked_papers(out)  # the filtered page has rows

    def test_query_comparison(self, index_file, capsys):
        assert main(
            ["query", "--index", index_file, "--methods", "AR", "PR", "CC",
             "--top", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "comparison" in out
        assert "overlap AR" in out

    def test_update_applies_delta(self, index_file, tmp_path, capsys):
        assert main(
            ["query", "--index", index_file, "--methods", "CC", "--top", "1"]
        ) == 0
        leader = _ranked_papers(capsys.readouterr().out)[0]
        delta_path = str(tmp_path / "delta.json")
        with open(delta_path, "w", encoding="utf-8") as handle:
            json.dump(
                {
                    "papers": [{"id": "NEW-1", "time": 2004.0}],
                    "citations": [["NEW-1", leader], ["NEW-1", "unknown"]],
                },
                handle,
            )
        code = main(["update", "--index", index_file, "--delta", delta_path])
        assert code == 0
        out = capsys.readouterr().out
        assert "+1 papers" in out
        assert "index v1" in out
        assert "warm" in out
        # The updated index is persisted and serves the new state.
        assert main(
            ["query", "--index", index_file, "--methods", "CC", "--top", "1"]
        ) == 0
        assert "v1" in capsys.readouterr().out

    def test_query_rejects_bare_network_file(self, hepth_file, capsys):
        code = main(
            ["query", "--index", hepth_file, "--methods", "AR"]
        )
        assert code == 1
        assert "not a repro score index" in capsys.readouterr().err


class TestTrace:
    @pytest.fixture
    def trace_dump(self, tmp_path):
        document = {
            "enabled": True,
            "recorded_total": 1,
            "traces": [
                {
                    "name": "gateway.request",
                    "start_ms": 0.0,
                    "duration_ms": 4.0,
                    "attrs": {"endpoint": "top", "status": 200},
                    "spans": [
                        {
                            "name": "engine.execute",
                            "start_ms": 1.0,
                            "duration_ms": 2.0,
                            "attrs": {"queries": 1},
                            "spans": [],
                        }
                    ],
                    "trace_id": "abc123",
                    "request_id": "rid-9",
                    "start_unix": 1000.0,
                }
            ],
        }
        path = str(tmp_path / "dump.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        return path

    def test_trace_converts_dump_to_chrome_events(
        self, trace_dump, tmp_path, capsys
    ):
        out_path = str(tmp_path / "chrome.json")
        assert main(
            ["trace", "--input", trace_dump, "--output", out_path]
        ) == 0
        assert "wrote 1 trace(s)" in capsys.readouterr().out
        with open(out_path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["displayTimeUnit"] == "ms"
        events = document["traceEvents"]
        assert [event["name"] for event in events] == [
            "gateway.request", "engine.execute",
        ]
        root = events[0]
        assert root["ph"] == "X"
        assert root["ts"] == 1000.0 * 1e6
        assert root["dur"] == 4000.0
        assert root["args"]["request_id"] == "rid-9"

    def test_trace_raw_prints_the_document_verbatim(
        self, trace_dump, capsys
    ):
        assert main(["trace", "--input", trace_dump, "--raw"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["recorded_total"] == 1
        assert document["traces"][0]["name"] == "gateway.request"

    def test_trace_notes_disabled_gateway(self, tmp_path, capsys):
        path = str(tmp_path / "empty.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(
                {"enabled": False, "recorded_total": 0, "traces": []},
                handle,
            )
        assert main(["trace", "--input", path]) == 0
        captured = capsys.readouterr()
        assert "tracing is disabled" in captured.err
        assert json.loads(captured.out)["traceEvents"] == []

    def test_trace_fetches_from_a_live_gateway(self, tmp_path, capsys):
        import urllib.request

        from repro.gateway import GatewayThread
        from repro.obs.trace import disable_tracing, enable_tracing
        from repro.serve import RankingService, ScoreIndex
        from repro.synth import toy_network

        index = ScoreIndex(toy_network())
        index.add_method("CC")
        enable_tracing(capacity=16)
        try:
            with GatewayThread(RankingService(index)) as gateway:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{gateway.port}"
                    "/v1/top?method=CC&k=2",
                    timeout=10,
                ).read()
                out_path = str(tmp_path / "live.json")
                assert main(
                    ["trace", "--url",
                     f"http://127.0.0.1:{gateway.port}",
                     "--output", out_path]
                ) == 0
        finally:
            disable_tracing()
        with open(out_path, encoding="utf-8") as handle:
            events = json.load(handle)["traceEvents"]
        names = {event["name"] for event in events}
        assert "gateway.request" in names
        assert "engine.execute" in names

    def test_trace_missing_input_is_typed_error(self, tmp_path, capsys):
        code = main(
            ["trace", "--input", str(tmp_path / "nope.json")]
        )
        assert code == 1
        assert "cannot read trace dump" in capsys.readouterr().err


class TestErrors:
    def test_error_exit_code(self, tmp_path, capsys):
        code = main(["summarize", "--input", str(tmp_path / "nope.npz")])
        assert code == 1
        assert "error:" in capsys.readouterr().err

    def test_errors_are_typed_one_liners(self, tmp_path, capsys):
        code = main(
            ["query", "--index", str(tmp_path / "missing.npz"),
             "--methods", "AR"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert err.count("\n") == 1
        assert "error: [DataFormatError]" in err
        assert "Traceback" not in err

    def test_missing_index_directory_is_typed(self, tmp_path, capsys):
        empty = tmp_path / "empty-dir"
        empty.mkdir()
        code = main(["query", "--index", str(empty), "--methods", "AR"])
        assert code == 1
        err = capsys.readouterr().err
        assert "error: [IndexIntegrityError]" in err
        assert "manifest.json" in err

    def test_corrupt_index_file_is_typed(self, tmp_path, capsys):
        bogus = tmp_path / "bogus.npz"
        bogus.write_bytes(b"this is not a zip archive")
        code = main(["query", "--index", str(bogus), "--methods", "AR"])
        assert code == 1
        err = capsys.readouterr().err
        assert "error: [DataFormatError]" in err
        assert "Traceback" not in err

    def test_batch_emits_json_error_objects_per_query(
        self, tmp_path, capsys
    ):
        from repro.synth import toy_network

        net_path = str(tmp_path / "toy.npz")
        save_network(toy_network(), net_path)
        index_path = str(tmp_path / "toy-index.npz")
        assert main(
            ["index", "--input", net_path, "--output", index_path,
             "--methods", "CC"]
        ) == 0
        capsys.readouterr()
        batch = tmp_path / "batch.json"
        batch.write_text(json.dumps([
            {"type": "top_k", "method": "CC", "k": 2},
            {"type": "paper", "id": "NO-SUCH-PAPER"},
            {"type": "top_k", "method": "NOPE", "k": 2},
        ]))
        code = main(["query", "--index", index_path, "--batch", str(batch)])
        assert code == 1                     # failures happened...
        documents = json.loads(capsys.readouterr().out)
        assert len(documents) == 3           # ...but every slot answered
        assert documents[0]["type"] == "top_k"
        assert len(documents[0]["entries"]) == 2
        assert documents[1] == {
            "type": "error",
            "error": "GraphError",
            "message": "unknown paper id: 'NO-SUCH-PAPER'",
        }
        assert documents[2]["type"] == "error"
        assert documents[2]["error"] == "ConfigurationError"


class TestCompare:
    def test_compare_prints_series_and_winners(self, hepth_file, capsys):
        code = main(
            [
                "compare", "--input", hepth_file,
                "--metric", "ndcg", "--k", "50",
                "--ratios", "1.6",
                "--methods", "RAM", "ATT-ONLY",
                "--jobs", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "ndcg@50 vs test ratio" in out
        assert "jobs=2" in out
        assert "RAM" in out and "ATT-ONLY" in out
        assert "winner @ 1.6:" in out

    def test_compare_spearman_serial(self, hepth_file, capsys):
        code = main(
            [
                "compare", "--input", hepth_file,
                "--metric", "spearman",
                "--ratios", "1.6",
                "--methods", "RAM",
                "--jobs", "1",
            ]
        )
        assert code == 0
        assert "spearman vs test ratio" in capsys.readouterr().out


class TestBench:
    def test_bench_list(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "figure4" in out
        assert "serve_delta" in out

    def test_bench_requires_scenario(self, capsys):
        assert main(["bench"]) == 2
        assert "--scenario is required" in capsys.readouterr().err

    def test_bench_unknown_scenario_errors(self, capsys):
        assert main(["bench", "--scenario", "nope"]) == 1
        assert "unknown bench scenario" in capsys.readouterr().err

    def test_bench_split_writes_json(self, tmp_path, capsys):
        code = main(
            [
                "bench", "--scenario", "split", "--smoke",
                "--repeats", "1", "--warmup", "0",
                "--output-dir", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        path = tmp_path / "BENCH_split.json"
        assert path.exists()
        document = json.loads(path.read_text())
        assert document["scenario"] == "split"
        assert document["payload"]["splits_per_second"] > 0

    def test_bench_figure4_smoke_reports_speedup(self, tmp_path, capsys):
        code = main(
            [
                "bench", "--scenario", "figure4", "--jobs", "2",
                "--smoke", "--output-dir", str(tmp_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "speedup vs serial" in out
        assert "identical rankings" in out
        document = json.loads((tmp_path / "BENCH_figure4.json").read_text())
        assert document["payload"]["identical_rankings"] is True


class TestShardedServe:
    @pytest.fixture
    def shard_dir(self, hepth_file, tmp_path_factory, capsys):
        path = str(tmp_path_factory.mktemp("serve") / "store")
        assert main(
            ["index", "--input", hepth_file, "--output", path,
             "--methods", "PR", "CC", "--shards", "3",
             "--partitioner", "year"]
        ) == 0
        capsys.readouterr()
        return path

    def test_index_shards_writes_directory(
        self, hepth_file, tmp_path, capsys
    ):
        path = str(tmp_path / "store")
        assert main(
            ["index", "--input", hepth_file, "--output", path,
             "--methods", "CC", "--shards", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "2 hash-partitioned shards" in out
        assert os.path.exists(os.path.join(path, "manifest.json"))
        assert os.path.exists(os.path.join(path, "shard_0000.npz"))
        assert os.path.exists(os.path.join(path, "shard_0001.npz"))

    def test_query_from_shard_directory_matches_file(
        self, hepth_file, shard_dir, tmp_path, capsys
    ):
        flat = str(tmp_path / "flat.npz")
        assert main(
            ["index", "--input", hepth_file, "--output", flat,
             "--methods", "PR", "CC"]
        ) == 0
        capsys.readouterr()
        assert main(
            ["query", "--index", flat, "--methods", "PR", "--top", "7"]
        ) == 0
        from_file = _ranked_papers(capsys.readouterr().out)
        assert main(
            ["query", "--index", shard_dir, "--methods", "PR",
             "--top", "7", "--jobs", "2"]
        ) == 0
        from_shards = _ranked_papers(capsys.readouterr().out)
        assert from_shards == from_file
        assert len(from_shards) == 7

    def test_batch_query_outputs_json(self, shard_dir, tmp_path, capsys):
        batch = tmp_path / "batch.json"
        batch.write_text(json.dumps([
            {"type": "top_k", "method": "PR", "k": 3},
            {"type": "compare", "methods": ["PR", "CC"], "k": 5},
        ]))
        assert main(
            ["query", "--index", shard_dir, "--batch", str(batch)]
        ) == 0
        documents = json.loads(capsys.readouterr().out)
        assert [doc["type"] for doc in documents] == ["top_k", "compare"]
        assert len(documents[0]["entries"]) == 3

    def test_batch_query_on_flat_index(
        self, hepth_file, tmp_path, capsys
    ):
        flat = str(tmp_path / "flat.npz")
        assert main(
            ["index", "--input", hepth_file, "--output", flat,
             "--methods", "CC"]
        ) == 0
        capsys.readouterr()
        batch = tmp_path / "batch.json"
        batch.write_text(json.dumps([{"type": "top_k", "method": "CC"}]))
        assert main(["query", "--index", flat, "--batch", str(batch)]) == 0
        (document,) = json.loads(capsys.readouterr().out)
        assert document["method"] == "CC"

    def test_update_rejects_shard_directory(self, shard_dir, capsys):
        assert main(
            ["update", "--index", shard_dir, "--delta", "whatever.json"]
        ) == 2
        assert "single-file index" in capsys.readouterr().err

    def test_bench_serve_batch_smoke(self, tmp_path, capsys):
        assert main(
            ["bench", "--scenario", "serve_batch", "--smoke",
             "--repeats", "1", "--warmup", "0", "--shards", "2",
             "--output-dir", str(tmp_path)]
        ) == 0
        document = json.loads(
            (tmp_path / "BENCH_serve_batch.json").read_text()
        )
        assert document["payload"]["identical_rankings"] is True
        assert document["payload"]["shards"] == 2
        assert document["payload"]["batched"]["queries_per_second"] > 0


class TestGatewayCLI:
    @pytest.fixture
    def toy_index(self, tmp_path_factory, capsys):
        from repro.synth import toy_network

        root = tmp_path_factory.mktemp("gateway")
        net_path = str(root / "toy.npz")
        save_network(toy_network(), net_path)
        index_path = str(root / "index.npz")
        assert main(
            ["index", "--input", net_path, "--output", index_path,
             "--methods", "CC", "PR"]
        ) == 0
        capsys.readouterr()
        return index_path

    def test_serve_http_for_seconds(self, toy_index, capsys):
        code = main(
            ["serve-http", "--index", toy_index, "--port", "0",
             "--for-seconds", "0.2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "serving" in out and "http://127.0.0.1:" in out
        assert "drained and stopped" in out

    def test_loadgen_static_mode_passes_gate(self, toy_index, capsys):
        code = main(
            ["loadgen", "--index", toy_index, "--clients", "3",
             "--requests", "8"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "identical rankings" in out and "yes" in out
        assert "p99 (ms)" in out

    def test_loadgen_stream_mode_json_report(self, capsys):
        code = main(
            ["loadgen", "--dataset", "hep-th", "--size", "tiny",
             "--seed", "7", "--methods", "CC", "--clients", "4",
             "--requests", "10", "--json"]
        )
        assert code == 0
        report = json.loads(capsys.readouterr().out)
        assert report["errors_5xx"] == 0
        assert report["identical_rankings"] is True
        assert report["updates_applied"] >= 1
        assert report["latency"]["p95_ms"] > 0


class TestStream:
    @pytest.fixture
    def log_file(self, hepth_file, tmp_path, capsys):
        path = str(tmp_path / "events.jsonl")
        assert main(
            ["stream", "extract", "--input", hepth_file, "--output", path]
        ) == 0
        assert "wrote" in capsys.readouterr().out
        return path

    def test_extract_writes_loadable_log(self, log_file):
        from repro.stream import EventLog

        log = EventLog.load(log_file)
        assert log.n_papers == 750

    def test_replay_to_index(self, log_file, tmp_path, capsys):
        out = str(tmp_path / "streamed.npz")
        assert main(
            ["stream", "replay", "--log", log_file,
             "--methods", "PR", "CC", "--batch-size", "256",
             "--bootstrap-size", "256", "--index-out", out]
        ) == 0
        text = capsys.readouterr().out
        assert "finalized (canonical)" in text
        assert os.path.exists(out)
        from repro.serve import ScoreIndex
        from repro.stream import EventLog, batch_compute

        index = ScoreIndex.load(out)
        cold = batch_compute(EventLog.load(log_file), ("PR", "CC"))
        import numpy as np

        np.testing.assert_array_equal(
            index.scores("PR"), cold.scores("PR")
        )

    def test_replay_checkpoint_resume_inspect(
        self, log_file, tmp_path, capsys
    ):
        ckpt = str(tmp_path / "ckpt")
        assert main(
            ["stream", "replay", "--log", log_file,
             "--methods", "CC", "--batch-size", "64",
             "--bootstrap-size", "64", "--max-batches", "10",
             "--checkpoint-dir", ckpt, "--checkpoint-every", "4"]
        ) == 0
        assert "checkpoint @" in capsys.readouterr().out

        assert main(["stream", "checkpoint", "--checkpoint", ckpt]) == 0
        inspected = capsys.readouterr().out
        assert "events consumed" in inspected and "CC" in inspected

        out = str(tmp_path / "resumed.npz")
        assert main(
            ["stream", "resume", "--checkpoint", ckpt,
             "--log", log_file, "--index-out", out]
        ) == 0
        text = capsys.readouterr().out
        assert "resumed at event" in text
        assert "finalized (canonical)" in text
        assert os.path.exists(out)

    def test_resume_wrong_log_fails_cleanly(
        self, log_file, hepth_file, tmp_path, capsys
    ):
        ckpt = str(tmp_path / "ckpt")
        assert main(
            ["stream", "replay", "--log", log_file, "--methods", "CC",
             "--batch-size", "64", "--bootstrap-size", "64",
             "--max-batches", "3", "--checkpoint-dir", ckpt]
        ) == 0
        capsys.readouterr()
        other = str(tmp_path / "other.jsonl")
        assert main(
            ["stream", "extract", "--dataset", "hep-th", "--size",
             "tiny", "--seed", "9", "--output", other]
        ) == 0
        capsys.readouterr()
        assert main(
            ["stream", "resume", "--checkpoint", ckpt, "--log", other]
        ) == 1
        assert "digest" in capsys.readouterr().err

    def test_no_finalize_leaves_warm_scores(self, log_file, capsys):
        assert main(
            ["stream", "replay", "--log", log_file, "--methods", "CC",
             "--batch-size", "512", "--bootstrap-size", "512",
             "--no-finalize"]
        ) == 0
        assert "exhausted (warm scores)" in capsys.readouterr().out

    def test_bench_stream_smoke(self, tmp_path, capsys):
        assert main(
            ["bench", "--scenario", "stream", "--smoke", "--repeats",
             "1", "--warmup", "0", "--shards", "2",
             "--output-dir", str(tmp_path)]
        ) == 0
        document = json.loads((tmp_path / "BENCH_stream.json").read_text())
        payload = document["payload"]
        assert payload["identical_rankings"] is True
        assert payload["replay"]["events_per_second"] > 0
        assert payload["checkpoint_resume"]["resumed_batches"] > 0

    def test_replay_rejects_bad_max_batches(self, log_file, capsys):
        assert main(
            ["stream", "replay", "--log", log_file, "--methods", "CC",
             "--max-batches", "0"]
        ) == 2
        assert "--max-batches" in capsys.readouterr().err
