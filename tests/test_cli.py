"""Smoke and behaviour tests for the command-line interface."""

import os

import pytest

from repro.cli import main
from repro.io.serialize import save_network


@pytest.fixture
def toy_file(toy, tmp_path):
    path = str(tmp_path / "toy.npz")
    save_network(toy, path)
    return path


@pytest.fixture(scope="module")
def hepth_file(tmp_path_factory):
    from repro.synth.profiles import generate_dataset

    path = str(tmp_path_factory.mktemp("nets") / "hepth.npz")
    save_network(generate_dataset("hep-th", size="tiny", seed=42), path)
    return path


class TestGenerate:
    def test_generate_writes_file(self, tmp_path, capsys):
        out = str(tmp_path / "net.npz")
        code = main(
            ["generate", "hep-th", out, "--size", "tiny", "--seed", "1"]
        )
        assert code == 0
        assert os.path.exists(out)
        assert "wrote" in capsys.readouterr().out


class TestSummarize:
    def test_summarize_input(self, toy_file, capsys):
        assert main(["summarize", "--input", toy_file]) == 0
        out = capsys.readouterr().out
        assert "papers" in out and "8" in out

    def test_summarize_generated(self, capsys):
        code = main(
            ["summarize", "--dataset", "hep-th", "--size", "tiny",
             "--seed", "1"]
        )
        assert code == 0
        assert "citations" in capsys.readouterr().out


class TestRank:
    def test_rank_default_method(self, hepth_file, capsys):
        assert main(["rank", "--input", hepth_file, "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "AR(" in out
        assert len([l for l in out.splitlines() if l.startswith(" ") or l]) >= 5

    def test_rank_specific_method(self, toy_file, capsys):
        assert main(
            ["rank", "--input", toy_file, "--method", "CC", "--top", "3"]
        ) == 0
        out = capsys.readouterr().out
        assert "A" in out  # most-cited toy paper


class TestEvaluate:
    def test_evaluate_runs(self, hepth_file, capsys):
        code = main(
            [
                "evaluate", "--input", hepth_file,
                "--methods", "RAM", "ATT-ONLY",
                "--ratio", "1.6",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "spearman" in out and "RAM" in out


class TestHorizons:
    def test_horizons_table(self, hepth_file, capsys):
        assert main(["horizons", "--input", hepth_file]) == 0
        out = capsys.readouterr().out
        assert "test ratio" in out and "2" in out


class TestPopular:
    def test_popular(self, hepth_file, capsys):
        code = main(
            ["popular", "--input", hepth_file, "--k", "50"]
        )
        assert code == 0
        assert "recently popular" in capsys.readouterr().out


class TestErrors:
    def test_error_exit_code(self, tmp_path, capsys):
        code = main(["summarize", "--input", str(tmp_path / "nope.npz")])
        assert code == 1
        assert "error:" in capsys.readouterr().err
