"""The fused solver's bit-identity contract, masks, batching, float32.

The headline property — asserted with ``np.array_equal``, never a
tolerance — is that stacking any subset of methods into one
:class:`~repro.core.fused.FusedSolver` pass returns exactly the bits
the per-method scalar solves produce, for any drop order of the
convergence masks and any ``jobs`` value.  docs/SOLVER.md derives why.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.core.fused as fused_module
from repro.baselines import make_method
from repro.core.fused import (
    FLOAT32_TOLERANCE,
    FUSE_MIN_COLUMNS,
    FusedColumn,
    FusedSolver,
    solve_methods,
)
from repro.core.power_iteration import power_iterate
from repro.errors import ConfigurationError, ConvergenceError
from repro.eval.metrics import spearman_rho
from repro.synth.profiles import generate_dataset

FUSABLE = [
    ("AR", dict(alpha=0.2, beta=0.5, gamma=0.3)),
    ("PR", dict(alpha=0.5)),
    ("CR", dict(tau_dir=2.0)),
    ("FR", dict(alpha=0.4, beta=0.1, rho=-0.3)),
    ("ECM", dict(alpha=0.3, gamma=0.4)),
]


@pytest.fixture(scope="module")
def net():
    return generate_dataset("hep-th", size="tiny", seed=7)


@pytest.fixture(scope="module")
def reference(net):
    """Per-method scalar solves: scores and convergence info."""
    out = {}
    for position, (label, params) in enumerate(FUSABLE):
        method = make_method(label, **params)
        scores = np.asarray(method.scores(net))
        out[position] = (scores, method.last_convergence)
    return out


def _columns(net, positions):
    return [
        make_method(FUSABLE[i][0], **FUSABLE[i][1]).fused_column(net)
        for i in positions
    ]


class TestBitIdentity:
    @pytest.mark.parametrize("jobs", [1, 2, 4])
    def test_full_stack_matches_scalar_solves(self, net, reference, jobs):
        solver = FusedSolver(
            _columns(net, range(len(FUSABLE))), net.n_papers, jobs=jobs
        )
        for position, (scores, info) in enumerate(solver.solve()):
            want_scores, want_info = reference[position]
            np.testing.assert_array_equal(scores, want_scores)
            assert info.iterations == want_info.iterations
            assert info.residual == want_info.residual
            assert info.residual_history == want_info.residual_history

    @pytest.mark.parametrize(
        "combo",
        [
            combo
            for r in (1, 2, 3)
            for combo in itertools.combinations(range(len(FUSABLE)), r)
        ],
        ids=lambda combo: "+".join(FUSABLE[i][0] for i in combo),
    )
    def test_every_small_subset(self, net, reference, combo):
        solver = FusedSolver(_columns(net, combo), net.n_papers)
        for position, (scores, info) in zip(combo, solver.solve()):
            want_scores, want_info = reference[position]
            np.testing.assert_array_equal(scores, want_scores)
            assert info.residual_history == want_info.residual_history

    def test_single_column_degenerates_to_power_iterate(self, net):
        """m=1 is exactly the legacy scalar loop (which delegates here)."""
        column = _columns(net, [1])[0]
        fused_scores, fused_info = FusedSolver(
            [column], net.n_papers
        ).solve()[0]
        def legacy_step(x):
            y = column.matrix @ x
            if column.dangling is not None:
                y = y + x[column.dangling].sum() / net.n_papers
            return column.alpha * y + column.jump

        legacy_scores, legacy_info = power_iterate(
            legacy_step,
            net.n_papers,
            tol=column.tol,
            max_iterations=column.max_iterations,
            start=column.start,
        )
        np.testing.assert_array_equal(fused_scores, legacy_scores)
        assert fused_info.iterations == legacy_info.iterations

    def test_wide_stack_batches_bitwise(self, net, monkeypatch):
        """Column batching is pure scheduling — bits never change."""
        monkeypatch.setattr(fused_module, "STACK_BYTES_BUDGET", 1)
        monkeypatch.setattr(fused_module, "MIN_STACK_WIDTH", 7)
        alphas = np.linspace(0.05, 0.95, 23)
        methods = [make_method("PR", alpha=float(a)) for a in alphas]
        solver = FusedSolver(
            [m.fused_column(net) for m in methods], net.n_papers
        )
        assert solver._stack_width(len(methods)) == 7
        for (scores, _), alpha in zip(solver.solve(), alphas):
            want = make_method("PR", alpha=float(alpha)).scores(net)
            np.testing.assert_array_equal(scores, np.asarray(want))


class TestConvergenceMasks:
    def test_column_dropped_at_first_iteration(self, net, reference):
        """A column converging instantly leaves the others' bits alone."""
        columns = _columns(net, range(len(FUSABLE)))
        # A tolerance of 1.0 is met by the first residual (probability
        # vectors differ by at most 2 in L1 after one step... not
        # guaranteed below 1.0 — so solve solo first to learn it).
        solo = FusedSolver([columns[1]], net.n_papers).solve()[0][1]
        loose = FusedColumn(
            label=columns[1].label,
            matrix=columns[1].matrix,
            alpha=columns[1].alpha,
            jump=columns[1].jump,
            dangling=columns[1].dangling,
            start=columns[1].start,
            tol=solo.residual_history[0] * 1.0001,
        )
        stacked = [columns[0], loose, columns[2]]
        results = FusedSolver(stacked, net.n_papers).solve()
        assert results[1][1].iterations == 1
        np.testing.assert_array_equal(results[0][0], reference[0][0])
        np.testing.assert_array_equal(results[2][0], reference[2][0])
        assert (
            results[0][1].residual_history
            == reference[0][1].residual_history
        )

    def test_failure_raises_for_lowest_index(self, net):
        columns = _columns(net, [0, 1])
        starved = [
            FusedColumn(
                label=c.label,
                matrix=c.matrix,
                alpha=c.alpha,
                jump=c.jump,
                dangling=c.dangling,
                start=c.start,
                max_iterations=1,
            )
            for c in columns
        ]
        with pytest.raises(ConvergenceError) as caught:
            FusedSolver(starved, net.n_papers).solve()
        assert caught.value.iterations == 1

    def test_failure_without_raise_reports_unconverged(self, net):
        c = _columns(net, [0])[0]
        lax = FusedColumn(
            label=c.label,
            matrix=c.matrix,
            alpha=c.alpha,
            jump=c.jump,
            dangling=c.dangling,
            start=c.start,
            max_iterations=2,
            raise_on_failure=False,
        )
        scores, info = FusedSolver([lax], net.n_papers).solve()[0]
        assert not info.converged
        assert info.iterations == 2
        assert np.all(np.isfinite(scores))


class TestSolveMethodsDispatch:
    def test_narrow_panel_matches_and_skips_stacking(self, net, monkeypatch):
        """< FUSE_MIN_COLUMNS per operator: scalar path, same bits."""
        stacked = []
        real_solve = FusedSolver.solve

        def counting_solve(self):
            stacked.append(len(self._columns))
            return real_solve(self)

        monkeypatch.setattr(FusedSolver, "solve", counting_solve)
        methods = [make_method(l, **p) for l, p in FUSABLE]
        solved = solve_methods(net, methods)
        for position, (scores, info) in enumerate(solved):
            want = np.asarray(
                make_method(*FUSABLE[position][:1], **FUSABLE[position][1])
                .scores(net)
            )
            np.testing.assert_array_equal(scores, want)
            assert info is not None
        # The 5-method panel's largest operator group is 4 wide, so
        # every stacked solve was a scalar (m=1) delegation.
        assert all(width == 1 for width in stacked)

    def test_wide_grid_is_stacked(self, net, monkeypatch):
        stacked = []
        real_solve = FusedSolver.solve

        def counting_solve(self):
            stacked.append(len(self._columns))
            return real_solve(self)

        monkeypatch.setattr(FusedSolver, "solve", counting_solve)
        methods = [
            make_method("PR", alpha=float(a))
            for a in np.linspace(0.05, 0.95, FUSE_MIN_COLUMNS)
        ]
        solve_methods(net, methods)
        assert FUSE_MIN_COLUMNS in stacked

    def test_unfusable_methods_fall_back(self, net):
        methods = [make_method("CC"), make_method("RAM", gamma=0.4)]
        solved = solve_methods(net, methods)
        for (scores, _info), method in zip(
            solved, [make_method("CC"), make_method("RAM", gamma=0.4)]
        ):
            np.testing.assert_array_equal(
                scores, np.asarray(method.scores(net))
            )


class TestFloat32:
    def test_accuracy_bound_vs_float64(self, net, reference):
        columns = _columns(net, range(len(FUSABLE)))
        solved = FusedSolver(
            columns, net.n_papers, dtype=np.float32
        ).solve()
        for position, (scores, info) in enumerate(solved):
            assert scores.dtype == np.float32
            assert info.converged
            want = reference[position][0]
            wide = scores.astype(np.float64)
            assert spearman_rho(wide, want) > 0.999
            scale = float(np.abs(want).max())
            assert float(np.abs(wide - want).max()) / scale < 1e-3

    def test_tolerance_floored(self, net):
        column = _columns(net, [1])[0]  # tol=1e-12, unreachable in f32
        solver = FusedSolver([column], net.n_papers, dtype=np.float32)
        assert solver._effective_tol(column) == FLOAT32_TOLERANCE

    def test_rejects_bare_step_columns(self):
        column = FusedColumn(label="step", step=lambda x: x)
        with pytest.raises(ConfigurationError, match="float32"):
            FusedSolver([column], 4, dtype=np.float32)


class TestFusedColumnValidation:
    def test_needs_exactly_one_of_matrix_step(self, net):
        with pytest.raises(ConfigurationError, match="exactly one"):
            FusedColumn(label="neither")

    def test_linear_column_needs_jump(self, net):
        matrix = _columns(net, [1])[0].matrix
        with pytest.raises(ConfigurationError, match="jump"):
            FusedColumn(label="nojump", matrix=matrix)

    def test_bad_tol_and_budget(self):
        with pytest.raises(ConfigurationError, match="tol"):
            FusedColumn(label="t", step=lambda x: x, tol=0.0)
        with pytest.raises(ConfigurationError, match="max_iterations"):
            FusedColumn(label="m", step=lambda x: x, max_iterations=0)


# ---------------------------------------------------------------------------
# Hypothesis: subsets, drop orders, jobs — always the scalar bits.
# ---------------------------------------------------------------------------


@settings(max_examples=15, deadline=None)
@given(
    subset=st.sets(
        st.integers(0, len(FUSABLE) - 1), min_size=1, max_size=5
    ),
    jobs=st.sampled_from([1, 2, 4]),
    data=st.data(),
)
def test_any_subset_any_drop_order_any_jobs(subset, jobs, data):
    """Random subsets with randomly loosened tolerances (which shuffle
    the order columns drop out of the stack) stay bit-identical to the
    scalar solves with the same tolerances."""
    net = generate_dataset("hep-th", size="tiny", seed=7)
    positions = sorted(subset)
    columns = []
    for i in positions:
        c = make_method(FUSABLE[i][0], **FUSABLE[i][1]).fused_column(net)
        tol = data.draw(
            st.sampled_from([1e-12, 1e-9, 1e-6, 1e-3]),
            label=f"tol[{FUSABLE[i][0]}]",
        )
        columns.append(
            FusedColumn(
                label=c.label,
                matrix=c.matrix,
                alpha=c.alpha,
                jump=c.jump,
                dangling=c.dangling,
                combine=c.combine,
                start=c.start,
                normalize=c.normalize,
                tol=tol,
            )
        )
    fused = FusedSolver(columns, net.n_papers, jobs=jobs).solve()
    for column, (scores, info) in zip(columns, fused):
        solo_scores, solo_info = FusedSolver(
            [column], net.n_papers
        ).solve()[0]
        np.testing.assert_array_equal(scores, solo_scores)
        assert info.iterations == solo_info.iterations
        assert info.residual_history == solo_info.residual_history
