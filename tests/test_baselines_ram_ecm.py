"""Unit tests for the RAM and ECM baselines."""

import numpy as np
import pytest

from repro.baselines.citation_count import CitationCount
from repro.baselines.ecm import EffectiveContagion
from repro.baselines.ram import RetainedAdjacency, retained_edge_weights
from repro.errors import ConfigurationError


class TestRetainedEdgeWeights:
    def test_weights_decay_with_age(self, chain):
        weights = retained_edge_weights(chain, 0.5)
        # Citations made at 2001, 2002, 2003; now = 2003.
        # Ages 2, 1, 0 -> weights 0.25, 0.5, 1.0 (edge order as stored).
        assert sorted(weights.tolist()) == [0.25, 0.5, 1.0]

    def test_gamma_one_gives_unit_weights(self, chain):
        assert np.allclose(retained_edge_weights(chain, 1.0), 1.0)

    def test_explicit_now_clips_negative_ages(self, chain):
        weights = retained_edge_weights(chain, 0.5, now=2000.0)
        assert np.all(weights <= 1.0)

    def test_gamma_validated(self, chain):
        with pytest.raises(ConfigurationError):
            retained_edge_weights(chain, 0.0)
        with pytest.raises(ConfigurationError):
            retained_edge_weights(chain, 1.5)


class TestRAM:
    def test_hand_computed_scores(self, star):
        """Star: HUB cited in 2001..2005, now = 2005, gamma = 0.5:
        RAM(HUB) = 0.5^4 + 0.5^3 + 0.5^2 + 0.5 + 1 = 1.9375."""
        scores = RetainedAdjacency(gamma=0.5).scores(star)
        assert scores[star.index_of("HUB")] == pytest.approx(1.9375)

    def test_gamma_one_equals_citation_count(self, hepth_tiny):
        ram = RetainedAdjacency(gamma=1.0).scores(hepth_tiny)
        cc = CitationCount().scores(hepth_tiny)
        assert np.allclose(ram, cc)

    def test_small_gamma_prefers_recent_citations(self, toy):
        """With gamma -> 0 only the newest citations matter."""
        scores = RetainedAdjacency(gamma=0.1).scores(toy)
        f = toy.index_of("F")  # cited at 2002, 2003 (recent)
        b = toy.index_of("B")  # cited at 1995 only
        assert scores[f] > scores[b]

    def test_gamma_validated(self):
        with pytest.raises(ConfigurationError):
            RetainedAdjacency(gamma=0.0)
        with pytest.raises(ConfigurationError):
            RetainedAdjacency(gamma=1.0001)

    def test_params(self):
        assert RetainedAdjacency(gamma=0.3).params() == {"gamma": 0.3}


class TestECM:
    def test_reduces_to_ram_as_alpha_vanishes(self, hepth_tiny):
        """ECM = RAM + alpha * (chain corrections): as alpha -> 0 the
        scores approach RAM's."""
        ram = RetainedAdjacency(gamma=0.3).scores(hepth_tiny)
        ecm = EffectiveContagion(alpha=1e-9, gamma=0.3).scores(hepth_tiny)
        assert np.allclose(ecm, ram, atol=1e-5)

    def test_chain_contributions_on_path(self, chain):
        """On the 4-chain with gamma = 1: ECM(A) counts the chains
        B->A (1), C->B->A (alpha), D->C->B->A (alpha^2)."""
        alpha = 0.5
        scores = EffectiveContagion(alpha=alpha, gamma=1.0).scores(chain)
        a = chain.index_of("A")
        assert scores[a] == pytest.approx(1 + alpha * (1 + alpha * 1))

    def test_terminates_exactly_on_dag(self, chain):
        method = EffectiveContagion(alpha=0.5, gamma=0.5)
        method.scores(chain)
        info = method.last_convergence
        assert info.converged
        # Longest chain has 3 edges: at most a handful of iterations.
        assert info.iterations <= 6

    def test_parameters_validated(self):
        with pytest.raises(ConfigurationError):
            EffectiveContagion(alpha=0.0)
        with pytest.raises(ConfigurationError):
            EffectiveContagion(alpha=1.0)
        with pytest.raises(ConfigurationError):
            EffectiveContagion(gamma=0.0)

    def test_ecm_dominates_ram_pointwise(self, hepth_tiny):
        """Chain corrections are non-negative, so ECM >= RAM."""
        ram = RetainedAdjacency(gamma=0.3).scores(hepth_tiny)
        ecm = EffectiveContagion(alpha=0.3, gamma=0.3).scores(hepth_tiny)
        assert np.all(ecm >= ram - 1e-12)

    def test_retained_matrix_weights(self, chain):
        matrix = EffectiveContagion(alpha=0.1, gamma=0.5).retained_matrix(
            chain
        )
        a, b = chain.index_of("A"), chain.index_of("B")
        # B cited A at 2001, age 2 at now=2003 -> weight 0.25.
        assert matrix[a, b] == pytest.approx(0.25)
