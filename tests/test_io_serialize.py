"""Unit tests for the .npz serialisation round-trip."""

import numpy as np
import pytest

from repro.errors import DataFormatError
from repro.io.serialize import load_network, save_network


class TestRoundTrip:
    def test_toy_round_trip(self, toy, tmp_path):
        path = str(tmp_path / "toy.npz")
        save_network(toy, path)
        loaded = load_network(path)
        assert loaded.paper_ids == toy.paper_ids
        assert np.array_equal(loaded.publication_times, toy.publication_times)
        assert np.array_equal(loaded.citing, toy.citing)
        assert np.array_equal(loaded.cited, toy.cited)
        assert loaded.paper_authors == toy.paper_authors
        assert np.array_equal(loaded.paper_venues, toy.paper_venues)

    def test_metadata_free_round_trip(self, chain, tmp_path):
        path = str(tmp_path / "chain.npz")
        save_network(chain, path)
        loaded = load_network(path)
        assert not loaded.has_authors
        assert not loaded.has_venues
        assert loaded.n_citations == 3

    def test_synthetic_round_trip_preserves_scores(self, hepth_tiny, tmp_path):
        """Ranking scores must be bit-identical after a round-trip."""
        from repro.baselines.ram import RetainedAdjacency

        path = str(tmp_path / "hepth.npz")
        save_network(hepth_tiny, path)
        loaded = load_network(path)
        original = RetainedAdjacency(gamma=0.5).scores(hepth_tiny)
        restored = RetainedAdjacency(gamma=0.5).scores(loaded)
        assert np.array_equal(original, restored)


class TestErrors:
    def test_missing_file(self):
        with pytest.raises(DataFormatError, match="not found"):
            load_network("/no/such/file.npz")

    def test_wrong_file_rejected(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, unrelated=np.ones(3))
        with pytest.raises(DataFormatError, match="not a repro network"):
            load_network(path)

    def test_wrong_version_rejected(self, toy, tmp_path):
        path = str(tmp_path / "toy.npz")
        save_network(toy, path)
        with np.load(path) as archive:
            payload = {name: archive[name] for name in archive.files}
        payload["format_version"] = np.asarray([999])
        np.savez(path, **payload)
        with pytest.raises(DataFormatError, match="unsupported format"):
            load_network(path)
