"""Unit tests for repro.core.attrank — Equation 4 and Theorem 1."""

import numpy as np
import pytest

from repro.baselines.pagerank import PageRank
from repro.core.attrank import AttRank, attrank_matrix
from repro.errors import ConfigurationError
from tests.conftest import assert_probability_vector


class TestConfiguration:
    def test_gamma_inferred(self):
        method = AttRank(alpha=0.2, beta=0.5)
        assert method.gamma == pytest.approx(0.3)

    def test_coefficients_must_sum_to_one(self):
        with pytest.raises(ConfigurationError, match="must equal 1"):
            AttRank(alpha=0.5, beta=0.4, gamma=0.4)

    def test_coefficients_must_be_probabilities(self):
        with pytest.raises(ConfigurationError):
            AttRank(alpha=-0.1, beta=0.6, gamma=0.5)
        with pytest.raises(ConfigurationError):
            AttRank(alpha=0.0, beta=1.2, gamma=-0.2)

    def test_window_validated(self):
        with pytest.raises(ConfigurationError):
            AttRank(alpha=0.2, beta=0.5, attention_window=0.0)

    def test_positive_decay_rejected(self):
        with pytest.raises(ConfigurationError):
            AttRank(alpha=0.2, beta=0.5, decay_rate=0.1)

    def test_params_reported(self):
        method = AttRank(alpha=0.1, beta=0.6, attention_window=2)
        params = method.params()
        assert params["alpha"] == 0.1
        assert params["beta"] == 0.6
        assert params["y"] == 2

    def test_describe_mentions_name(self):
        assert AttRank(alpha=0.2, beta=0.5).describe().startswith("AR(")


class TestScores:
    def test_probability_vector(self, toy):
        method = AttRank(
            alpha=0.3, beta=0.4, gamma=0.3, attention_window=3, decay_rate=-0.5
        )
        assert_probability_vector(method.scores(toy))

    def test_start_independence_theorem1(self, hepth_tiny):
        """Theorem 1: the fixed point is unique, so two solves agree."""
        method = AttRank(
            alpha=0.5, beta=0.3, gamma=0.2, attention_window=2, decay_rate=-0.5
        )
        first = method.scores(hepth_tiny)
        second = method.scores(hepth_tiny)
        assert np.allclose(first, second, atol=1e-10)

    def test_alpha_zero_closed_form(self, toy):
        """With alpha = 0 the score is exactly beta*A + gamma*T (one
        'iteration', as Section 4.4 notes)."""
        from repro.core.attention import attention_vector
        from repro.core.recency import recency_vector

        method = AttRank(
            alpha=0.0, beta=0.6, gamma=0.4, attention_window=3, decay_rate=-0.4
        )
        scores = method.scores(toy)
        expected = 0.6 * attention_vector(toy, 3) + 0.4 * recency_vector(
            toy, -0.4
        )
        assert np.allclose(scores, expected)
        assert method.last_convergence is None

    def test_equation4_fixed_point(self, toy):
        """The returned vector satisfies AR = alpha*S@AR + beta*A + gamma*T."""
        from repro.graph.matrix import StochasticOperator

        method = AttRank(
            alpha=0.4, beta=0.3, gamma=0.3, attention_window=3, decay_rate=-0.5
        )
        scores = method.scores(toy)
        attention, recency = method.jump_vectors(toy)
        rhs = (
            0.4 * StochasticOperator(toy).apply(scores)
            + 0.3 * attention
            + 0.3 * recency
        )
        assert np.allclose(scores, rhs, atol=1e-9)

    def test_matches_pagerank_when_beta0_w0(self, hepth_tiny):
        """Paper Section 3: beta = 0 and w = 0 recovers PageRank."""
        attrank = AttRank(
            alpha=0.5, beta=0.0, gamma=0.5, decay_rate=0.0, tol=1e-14
        )
        pagerank = PageRank(alpha=0.5, tol=1e-14)
        assert np.allclose(
            attrank.scores(hepth_tiny),
            pagerank.scores(hepth_tiny),
            atol=1e-9,
        )

    def test_fits_decay_rate_when_unset(self, hepth_tiny):
        method = AttRank(alpha=0.2, beta=0.5, gamma=0.3, attention_window=2)
        method.scores(hepth_tiny)
        assert method.fitted_decay_rate_ is not None
        assert method.fitted_decay_rate_ < 0

    def test_empty_network_rejected(self):
        from repro.graph.citation_network import CitationNetwork

        with pytest.raises(ConfigurationError):
            AttRank(alpha=0.2, beta=0.5).scores(CitationNetwork([], [], [], []))

    def test_convergence_info_populated(self, hepth_tiny):
        method = AttRank(
            alpha=0.5, beta=0.25, gamma=0.25, attention_window=2,
            decay_rate=-0.5,
        )
        method.scores(hepth_tiny)
        info = method.last_convergence
        assert info is not None and info.converged
        assert info.residual <= 1e-12

    def test_convergence_speed_paper_claim(self, hepth_tiny):
        """Section 4.4: fewer than ~30 iterations at alpha = 0.5 and
        eps = 1e-12, decreasing with alpha."""
        fast = AttRank(alpha=0.1, beta=0.45, gamma=0.45, decay_rate=-0.5)
        slow = AttRank(alpha=0.5, beta=0.25, gamma=0.25, decay_rate=-0.5)
        fast.scores(hepth_tiny)
        slow.scores(hepth_tiny)
        assert slow.last_convergence.iterations <= 40
        assert (
            fast.last_convergence.iterations
            < slow.last_convergence.iterations
        )

    def test_rank_orders_by_score(self, toy):
        method = AttRank(
            alpha=0.2, beta=0.5, gamma=0.3, attention_window=3, decay_rate=-0.5
        )
        scores = method.scores(toy)
        ranking = method.rank(toy)
        assert np.all(np.diff(scores[ranking]) <= 1e-15)


class TestAttRankMatrix:
    def test_matrix_is_column_stochastic(self, toy):
        matrix = attrank_matrix(
            toy, alpha=0.4, beta=0.3, gamma=0.3, decay_rate=-0.5
        )
        assert np.allclose(matrix.sum(axis=0), 1.0)

    def test_matrix_strictly_positive_when_gamma_positive(self, toy):
        """Theorem 1's irreducibility/aperiodicity argument: the recency
        vector is strictly positive, so every entry of R is positive."""
        matrix = attrank_matrix(
            toy, alpha=0.4, beta=0.3, gamma=0.3, decay_rate=-0.5
        )
        assert matrix.min() > 0.0

    def test_matrix_diagonal_positive(self, toy):
        matrix = attrank_matrix(
            toy, alpha=0.5, beta=0.2, gamma=0.3, decay_rate=-0.3
        )
        assert np.all(np.diag(matrix) > 0)

    def test_power_method_on_dense_matrix_agrees(self, toy):
        """Iterating the dense R reproduces AttRank's sparse solve."""
        matrix = attrank_matrix(
            toy, alpha=0.4, beta=0.3, gamma=0.3, decay_rate=-0.5,
            attention_window=3,
        )
        vector = np.full(toy.n_papers, 1.0 / toy.n_papers)
        for _ in range(200):
            vector = matrix @ vector
        method = AttRank(
            alpha=0.4, beta=0.3, gamma=0.3, attention_window=3,
            decay_rate=-0.5,
        )
        assert np.allclose(method.scores(toy), vector, atol=1e-9)
