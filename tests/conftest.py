"""Shared fixtures: hand-checkable toy networks and small synthetic corpora.

Session-scoped fixtures cache the expensive synthetic datasets so the
whole suite generates each of them once.
"""

from __future__ import annotations

import os

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.graph.builder import NetworkBuilder
from repro.graph.citation_network import CitationNetwork
from repro.synth.profiles import generate_dataset
from repro.synth.scenarios import toy_network
from repro.eval.split import split_by_ratio

# Deterministic property testing: `derandomize` makes hypothesis derive
# its examples from each test's source rather than a random seed, so CI
# and local runs explore the same cases and failures reproduce exactly.
# Override with HYPOTHESIS_PROFILE=dev for randomised local exploration.
settings.register_profile(
    "repro-ci",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.register_profile(
    "dev",
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "repro-ci"))


@pytest.fixture
def toy() -> CitationNetwork:
    """The fixed 8-paper network (A..H) of repro.synth.scenarios."""
    return toy_network()


@pytest.fixture
def chain() -> CitationNetwork:
    """A 4-paper chain: D -> C -> B -> A (each cites its predecessor)."""
    builder = NetworkBuilder()
    builder.add_paper("A", 2000.0)
    builder.add_paper("B", 2001.0, references=["A"])
    builder.add_paper("C", 2002.0, references=["B"])
    builder.add_paper("D", 2003.0, references=["C"])
    return builder.build()


@pytest.fixture
def star() -> CitationNetwork:
    """A star: papers S1..S5 (2001..2005) all cite HUB (2000)."""
    builder = NetworkBuilder()
    builder.add_paper("HUB", 2000.0)
    for i in range(1, 6):
        builder.add_paper(f"S{i}", 2000.0 + i, references=["HUB"])
    return builder.build()


@pytest.fixture
def two_dangling() -> CitationNetwork:
    """Two isolated papers (both dangling, no citations at all)."""
    builder = NetworkBuilder()
    builder.add_paper("X", 1999.0)
    builder.add_paper("Y", 2004.0)
    return builder.build()


@pytest.fixture(scope="session")
def hepth_tiny() -> CitationNetwork:
    """A 750-paper synthetic hep-th corpus (fast, deterministic)."""
    return generate_dataset("hep-th", size="tiny", seed=42)


@pytest.fixture(scope="session")
def dblp_tiny() -> CitationNetwork:
    """A 2000-paper synthetic DBLP corpus with authors and venues."""
    return generate_dataset("dblp", size="tiny", seed=42)


@pytest.fixture(scope="session")
def hepth_split(hepth_tiny):
    """The default (ratio 1.6) temporal split of the tiny hep-th corpus."""
    return split_by_ratio(hepth_tiny, 1.6)


@pytest.fixture(scope="session")
def dblp_split(dblp_tiny):
    """The default (ratio 1.6) temporal split of the tiny DBLP corpus."""
    return split_by_ratio(dblp_tiny, 1.6)


def assert_probability_vector(vector: np.ndarray, *, atol: float = 1e-9) -> None:
    """Assert that ``vector`` is a valid probability vector."""
    assert vector.ndim == 1
    assert np.all(vector >= -atol), "negative entries"
    assert abs(float(vector.sum()) - 1.0) <= atol, "does not sum to 1"
