"""Property-based tests (hypothesis) on the library's core invariants.

Strategy: generate random time-consistent citation networks (a DAG whose
edges always point backwards in time) and random method configurations,
then assert the structural invariants of the paper:

* the stochastic matrix S is exactly column-stochastic (Theorem 1's
  premise),
* attention / recency / AttRank vectors are probability vectors,
* AttRank's fixed point is independent of the starting vector,
* metric ranges and identities (Spearman symmetry, nDCG bounds),
* split ground truth is consistent under every ratio,
* stream-replay equivalence: a finalized micro-batched replay of any
  network's event log is bit-identical to the cold batch compute, at
  any batch size, shard count, and checkpoint/resume point,
* shard partitioners assign each paper independently of corpus order,
* the ranking comparator ``(-score, index)`` is a total order.
"""

from __future__ import annotations

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.attention import attention_vector
from repro.core.attrank import AttRank, attrank_matrix
from repro.core.power_iteration import power_iterate
from repro.core.recency import recency_vector
from repro.eval.metrics import ndcg_at_k, spearman_rho
from repro.eval.split import split_by_ratio
from repro.graph.citation_network import CitationNetwork
from repro.graph.matrix import StochasticOperator

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------


@st.composite
def citation_networks(draw, min_papers: int = 3, max_papers: int = 40):
    """A random time-consistent citation network."""
    n = draw(st.integers(min_papers, max_papers))
    base_year = draw(st.integers(1950, 2010))
    # Non-decreasing publication times with random gaps.
    gaps = draw(
        st.lists(
            st.floats(0.0, 2.0, allow_nan=False),
            min_size=n,
            max_size=n,
        )
    )
    times = base_year + np.cumsum(np.asarray(gaps))
    citing: list[int] = []
    cited: list[int] = []
    edge_flags = draw(
        st.lists(st.integers(0, 3), min_size=n, max_size=n)
    )
    for source in range(1, n):
        # Cite up to edge_flags[source] strictly older papers.
        older = [
            t for t in range(source) if times[t] < times[source]
        ]
        for target in older[: edge_flags[source]]:
            citing.append(source)
            cited.append(target)
    return CitationNetwork(
        [f"p{i}" for i in range(n)], times, citing, cited
    )


coefficients = st.tuples(
    st.floats(0.0, 0.5), st.floats(0.05, 0.9)
).map(
    lambda ab: (
        round(ab[0], 3),
        round(min(ab[1], 1.0 - ab[0]) * 0.9, 3),
    )
)


# ---------------------------------------------------------------------------
# Graph invariants
# ---------------------------------------------------------------------------


@given(citation_networks())
@settings(max_examples=40, deadline=None)
def test_stochastic_operator_columns_sum_to_one(network):
    dense = StochasticOperator(network).dense()
    assert np.allclose(dense.sum(axis=0), 1.0, atol=1e-9)
    assert dense.min() >= 0.0


@given(citation_networks())
@settings(max_examples=40, deadline=None)
def test_degree_conservation(network):
    assert network.in_degree.sum() == network.out_degree.sum()


@given(citation_networks(), st.floats(0.5, 8.0))
@settings(max_examples=40, deadline=None)
def test_attention_is_probability_vector(network, window):
    vector = attention_vector(network, window)
    assert vector.min() >= 0.0
    assert abs(vector.sum() - 1.0) < 1e-9


@given(citation_networks(), st.floats(-3.0, 0.0))
@settings(max_examples=40, deadline=None)
def test_recency_is_probability_vector(network, decay):
    vector = recency_vector(network, decay)
    assert vector.min() >= 0.0
    assert abs(vector.sum() - 1.0) < 1e-9


# ---------------------------------------------------------------------------
# AttRank invariants (Theorem 1)
# ---------------------------------------------------------------------------


@given(citation_networks(), coefficients)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_attrank_fixed_point_properties(network, alpha_beta):
    alpha, beta = alpha_beta
    gamma = round(1.0 - alpha - beta, 10)
    method = AttRank(
        alpha=alpha,
        beta=beta,
        gamma=gamma,
        attention_window=2.0,
        decay_rate=-0.5,
        max_iterations=3000,
    )
    scores = method.scores(network)
    # Probability vector.
    assert scores.min() >= -1e-12
    assert abs(scores.sum() - 1.0) < 1e-9
    # Fixed point of Eq. 4.
    attention, recency = method.jump_vectors(network)
    rhs = (
        alpha * StochasticOperator(network).apply(scores)
        + beta * attention
        + gamma * recency
    )
    assert np.allclose(scores, rhs, atol=1e-8)


@given(citation_networks(min_papers=4, max_papers=20), coefficients)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_attrank_matrix_is_stochastic(network, alpha_beta):
    alpha, beta = alpha_beta
    gamma = round(1.0 - alpha - beta, 10)
    matrix = attrank_matrix(
        network, alpha=alpha, beta=beta, gamma=gamma, decay_rate=-0.4
    )
    assert np.allclose(matrix.sum(axis=0), 1.0, atol=1e-9)
    if gamma > 0:
        assert matrix.min() > 0.0  # irreducible + aperiodic


@given(citation_networks(min_papers=4, max_papers=20))
@settings(max_examples=20, deadline=None)
def test_attrank_start_independence(network):
    method = AttRank(
        alpha=0.4, beta=0.3, gamma=0.3, attention_window=2.0,
        decay_rate=-0.5, max_iterations=3000,
    )
    # Solve once via the method, once via raw power iteration from a
    # deliberately skewed start.
    reference = method.scores(network)
    attention, recency = method.jump_vectors(network)
    jump = 0.3 * attention + 0.3 * recency
    operator = StochasticOperator(network)
    skewed = np.zeros(network.n_papers)
    skewed[0] = 1.0
    result, _ = power_iterate(
        lambda x: 0.4 * operator.apply(x) + jump,
        network.n_papers,
        start=skewed,
        max_iterations=3000,
    )
    assert np.allclose(reference, result, atol=1e-8)


# ---------------------------------------------------------------------------
# Metric invariants
# ---------------------------------------------------------------------------


score_vectors = st.lists(
    st.floats(0.0, 100.0, allow_nan=False), min_size=3, max_size=60
)


@given(score_vectors, st.randoms(use_true_random=False))
@settings(max_examples=50, deadline=None)
def test_spearman_symmetry_and_range(values, rand):
    a = np.asarray(values)
    b = np.asarray(values.copy())
    rand.shuffle(values)
    c = np.asarray(values)
    if np.unique(a).size < 2 or np.unique(c).size < 2:
        return  # undefined correlation
    forward = spearman_rho(a, c)
    backward = spearman_rho(c, a)
    assert forward == backward
    assert -1.0 - 1e-9 <= forward <= 1.0 + 1e-9
    assert spearman_rho(a, b) == 1.0


@given(score_vectors, st.integers(1, 100))
@settings(max_examples=50, deadline=None)
def test_ndcg_bounds_and_oracle(values, k):
    gains = np.asarray(values)
    rng = np.random.default_rng(0)
    noise = rng.random(gains.size)
    value = ndcg_at_k(noise, gains, k)
    assert 0.0 <= value <= 1.0 + 1e-12
    if gains.sum() > 0:
        assert ndcg_at_k(gains, gains, k) == 1.0


@given(st.integers(0, 2**32 - 1))
@settings(max_examples=15, deadline=None)
def test_ndcg_monotone_under_improvement(seed):
    """Moving a high-gain paper up the ranking cannot lower nDCG."""
    rng = np.random.default_rng(seed)
    gains = rng.integers(0, 20, size=30).astype(float)
    scores = rng.random(30)
    best = int(np.argmax(gains))
    improved = scores.copy()
    improved[best] = scores.max() + 1.0
    assert ndcg_at_k(improved, gains, 10) >= ndcg_at_k(scores, gains, 10) - 1e-12


# ---------------------------------------------------------------------------
# Stream-replay invariants
# ---------------------------------------------------------------------------


#: AttRank with a pinned decay rate: random tiny bootstrap snapshots
#: cannot support the citation-age fit the default configuration runs.
_STREAM_PARAMS = {"AR": {"decay_rate": -0.6}}
_STREAM_METHODS = ("AR", "PR", "CC")


@given(
    citation_networks(min_papers=4, max_papers=25),
    st.integers(1, 24),
    st.integers(1, 4),
)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_replay_equals_batch_compute(network, batch_size, shards):
    """Finalized replay == cold batch compute, bit for bit."""
    from repro.stream import EventLog, StreamIngestor, batch_compute

    log = EventLog.from_network(network)
    cold = batch_compute(log, _STREAM_METHODS, method_params=_STREAM_PARAMS)
    ingestor = StreamIngestor(
        log,
        _STREAM_METHODS,
        batch_size=batch_size,
        shards=shards,
        method_params=_STREAM_PARAMS,
    )
    report = ingestor.replay()
    assert report.exhausted
    ingestor.finalize()
    assert ingestor.index.network.paper_ids == cold.network.paper_ids
    for label in _STREAM_METHODS:
        assert np.array_equal(
            ingestor.index.scores(label), cold.scores(label)
        ), label


@given(citation_networks(min_papers=6, max_papers=25), st.integers(1, 8))
@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_resumed_replay_is_bit_identical(network, batch_size):
    """Checkpoint/resume at an arbitrary point changes nothing."""
    import tempfile

    from repro.stream import EventLog, StreamIngestor

    log = EventLog.from_network(network)

    def build():
        return StreamIngestor(
            log,
            ("PR", "CC"),
            batch_size=batch_size,
            method_params=_STREAM_PARAMS,
        )

    uninterrupted = build()
    uninterrupted.replay()

    interrupted = build()
    interrupted.replay(max_batches=1)
    with tempfile.TemporaryDirectory() as scratch:
        interrupted.checkpoint(scratch)
        resumed = StreamIngestor.resume(scratch, log)
    resumed.replay()
    assert resumed.index.version == uninterrupted.index.version
    for label in ("PR", "CC"):
        assert np.array_equal(
            resumed.index.scores(label),
            uninterrupted.index.scores(label),
        ), label


# ---------------------------------------------------------------------------
# Partitioner invariants
# ---------------------------------------------------------------------------


_paper_populations = st.lists(
    st.tuples(
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=12,
        ),
        st.floats(1900.0, 2030.0, allow_nan=False),
    ),
    min_size=1,
    max_size=40,
    unique_by=lambda pair: pair[0],
)


@given(
    _paper_populations,
    st.integers(1, 7),
    st.sampled_from(["hash", "year"]),
    st.randoms(use_true_random=False),
)
@settings(max_examples=40, deadline=None)
def test_partitioner_stable_under_permutation(papers, n_shards, partitioner, rand):
    """A paper's shard depends on the paper, not on corpus order."""
    from repro.serve.shard import _assign, year_boundaries

    ids = [pid for pid, _ in papers]
    times = np.asarray([t for _, t in papers])
    boundaries = (
        year_boundaries(times, n_shards) if partitioner == "year" else None
    )
    original = dict(
        zip(ids, _assign(ids, times, n_shards, partitioner, boundaries))
    )
    shuffled = list(papers)
    rand.shuffle(shuffled)
    ids2 = [pid for pid, _ in shuffled]
    times2 = np.asarray([t for _, t in shuffled])
    boundaries2 = (
        year_boundaries(times2, n_shards) if partitioner == "year" else None
    )
    permuted = dict(
        zip(ids2, _assign(ids2, times2, n_shards, partitioner, boundaries2))
    )
    assert original == permuted
    assert all(0 <= shard < n_shards for shard in original.values())


@given(_paper_populations, st.integers(1, 7))
@settings(max_examples=40, deadline=None)
def test_hash_partitioner_vectorised_matches_scalar(papers, n_shards):
    """The bulk byte-column FNV path equals the per-id scalar path."""
    from repro.serve.shard import _hash_assign, hash_shard_of

    ids = [pid for pid, _ in papers]
    bulk = _hash_assign(ids, n_shards)
    assert [int(s) for s in bulk] == [
        hash_shard_of(pid, n_shards) for pid in ids
    ]


# ---------------------------------------------------------------------------
# Ranking-comparator invariants
# ---------------------------------------------------------------------------


_tied_scores = st.lists(
    st.floats(0.0, 4.0, allow_nan=False).map(lambda x: round(x, 1)),
    min_size=1,
    max_size=60,
)


@given(_tied_scores)
@settings(max_examples=50, deadline=None)
def test_ranking_comparator_total_order(values):
    """ranking_from_scores realises the strict total order
    ``i < j  iff  (-score[i], i) < (-score[j], j)``."""
    from repro.ranking import ranking_from_scores

    scores = np.asarray(values)
    order = ranking_from_scores(scores)
    # A permutation of the population.
    assert sorted(order.tolist()) == list(range(scores.size))
    # Agrees with python's sort on the comparator key — which is
    # antisymmetric, transitive, and total by construction.
    expected = sorted(range(scores.size), key=lambda i: (-scores[i], i))
    assert order.tolist() == expected
    # Scores non-increasing along the ranking; ties by ascending index.
    ranked = scores[order]
    assert np.all(ranked[:-1] >= ranked[1:])
    for a, b in zip(order[:-1], order[1:]):
        if scores[a] == scores[b]:
            assert a < b


@given(_tied_scores, st.randoms(use_true_random=False))
@settings(max_examples=40, deadline=None)
def test_ranking_comparator_consistent_under_relabeling(values, rand):
    """Permuting the papers permutes the ranking consistently: the
    sequence of *scores* read along the ranking is invariant."""
    from repro.ranking import ranking_from_scores

    scores = np.asarray(values)
    permutation = list(range(scores.size))
    rand.shuffle(permutation)
    permutation = np.asarray(permutation)
    relabeled = scores[permutation]
    np.testing.assert_array_equal(
        scores[ranking_from_scores(scores)],
        relabeled[ranking_from_scores(relabeled)],
    )


# ---------------------------------------------------------------------------
# Split invariants
# ---------------------------------------------------------------------------


@given(
    citation_networks(min_papers=8, max_papers=40),
    st.sampled_from([1.2, 1.4, 1.6, 1.8, 2.0]),
)
@settings(max_examples=30, deadline=None)
def test_split_ground_truth_consistency(network, ratio):
    split = split_by_ratio(network, ratio)
    # STI is non-negative and bounded by the future papers' references.
    assert split.sti.min() >= 0
    assert split.current.n_papers == network.n_papers // 2
    assert split.n_future_papers <= network.n_papers
    # Every citation in the current network is between current papers.
    assert split.current.citation_times().max(initial=-np.inf) <= split.t_current
    # Total STI equals the number of future->current edges.
    order = np.argsort(network.publication_times, kind="stable")
    n_current = network.n_papers // 2
    n_future = min(int(round(ratio * n_current)), network.n_papers)
    current_set = set(order[:n_current].tolist())
    future_only = set(order[n_current:n_future].tolist())
    expected = sum(
        1
        for s, t in zip(network.citing, network.cited)
        if int(s) in future_only and int(t) in current_set
    )
    assert int(split.sti.sum()) == expected
