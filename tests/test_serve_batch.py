"""Behaviour and property tests for the batched query engine.

The load-bearing guarantee: a :class:`QueryEngine` over a
:class:`ShardedScoreIndex` — any shard count, any partitioner, any
worker count, batched or not — answers every query with results
*bit-identical* to the unsharded, one-query-at-a-time
:class:`RankingService`.  The property tests below state it over
randomized synthetic networks at shard counts {1, 2, 7}.
"""

import numpy as np
import pytest

from repro.errors import ConfigurationError, DataFormatError, GraphError
from repro.serve import (
    CompareQuery,
    PaperQuery,
    QueryEngine,
    RankingService,
    ScoreIndex,
    ShardedScoreIndex,
    TopKQuery,
    queries_from_payload,
    result_payload,
)
from repro.synth import generate_dataset

SHARD_COUNTS = (1, 2, 7)


def _mixed_queries(network):
    times = network.publication_times
    lo, hi = float(times.min()), float(times.max())
    mid = (lo + hi) / 2.0
    queries = []
    for method in ("PR", "CC"):
        queries.extend(
            [
                TopKQuery(method=method, k=13),
                TopKQuery(method=method, k=7, offset=11),
                TopKQuery(method=method, k=50, year_range=(lo, mid)),
                TopKQuery(
                    method=method, k=5, offset=3, year_range=(mid, hi)
                ),
                TopKQuery(method=method, k=10, offset=10_000),
            ]
        )
    queries.append(CompareQuery(methods=("PR", "CC"), k=20))
    queries.append(
        CompareQuery(methods=("CC", "PR"), k=9, year_range=(lo, mid))
    )
    step = max(1, network.n_papers // 7)
    queries.extend(
        PaperQuery(paper_id=network.id_of(i))
        for i in range(0, network.n_papers, step)
    )
    return queries


def _answer_serially(service, queries):
    results = []
    for query in queries:
        if isinstance(query, TopKQuery):
            results.append(
                service.top_k(
                    query.method,
                    k=query.k,
                    offset=query.offset,
                    year_range=query.year_range,
                )
            )
        elif isinstance(query, CompareQuery):
            results.append(
                service.compare(
                    query.methods,
                    k=query.k,
                    offset=query.offset,
                    year_range=query.year_range,
                )
            )
        else:
            results.append(service.paper(query.paper_id))
    return results


class TestBatchIdenticalToUnshardedService:
    """The acceptance property, over randomized synth networks."""

    @pytest.mark.parametrize("seed", [11, 23, 47])
    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_batch_matches_serial_service(self, seed, n_shards):
        network = generate_dataset("hep-th", size="tiny", seed=seed)
        index = ScoreIndex(network)
        index.add_method("PR")
        index.add_method("CC")
        queries = _mixed_queries(network)
        expected = _answer_serially(RankingService(index), queries)
        for partitioner in ("hash", "year"):
            store = ShardedScoreIndex.from_index(
                index, n_shards=n_shards, partitioner=partitioner
            )
            engine = QueryEngine(store, jobs=1)
            assert list(engine.execute(queries)) == expected

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_threaded_execution_is_deterministic(self, hepth_tiny, n_shards):
        index = ScoreIndex(hepth_tiny)
        index.add_method("PR")
        index.add_method("CC")
        queries = _mixed_queries(hepth_tiny)
        expected = _answer_serially(RankingService(index), queries)
        engine = QueryEngine(
            ShardedScoreIndex.from_index(index, n_shards=n_shards),
            jobs=4,
        )
        for _ in range(3):
            assert list(engine.execute(queries)) == expected

    @pytest.mark.parametrize("n_shards", SHARD_COUNTS)
    def test_sharded_service_is_a_drop_in(self, hepth_tiny, n_shards):
        """RankingService(shards=N) keeps its public behaviour."""
        index = ScoreIndex(hepth_tiny)
        index.add_method("PR")
        index.add_method("CC")
        baseline = RankingService(index)
        sharded = RankingService(index, shards=n_shards, jobs=2)
        assert (
            sharded.top_k("PR", k=12).entries
            == baseline.top_k("PR", k=12).entries
        )
        assert (
            sharded.paper(hepth_tiny.id_of(3))
            == baseline.paper(hepth_tiny.id_of(3))
        )

    def test_deep_pagination_walks_the_full_ranking(self, hepth_tiny):
        index = ScoreIndex(hepth_tiny)
        index.add_method("CC")
        store = ShardedScoreIndex.from_index(index, n_shards=7)
        engine = QueryEngine(store)
        pages = engine.execute(
            [
                TopKQuery(method="CC", k=100, offset=start)
                for start in range(0, hepth_tiny.n_papers, 100)
            ]
        )
        walked = [pid for page in pages for pid in page.paper_ids]
        service = RankingService(index)
        assert walked == list(
            service.top_k("CC", k=hepth_tiny.n_papers).paper_ids
        )


class TestEngineBehaviour:
    @pytest.fixture
    def engine(self, hepth_tiny):
        index = ScoreIndex(hepth_tiny)
        index.add_method("PR")
        index.add_method("CC")
        return QueryEngine(
            ShardedScoreIndex.from_index(index, n_shards=3)
        )

    def test_validation_mirrors_service(self, engine):
        with pytest.raises(ConfigurationError, match="k must be"):
            engine.top_k("PR", k=0)
        with pytest.raises(ConfigurationError, match="offset"):
            engine.top_k("PR", offset=-1)
        with pytest.raises(ConfigurationError, match="year range"):
            engine.top_k("PR", year_range=(2000.0, 1990.0))
        with pytest.raises(ConfigurationError, match="not in the index"):
            engine.top_k("AR")
        with pytest.raises(ConfigurationError, match="duplicate"):
            engine.compare(["PR", "pr"])
        with pytest.raises(GraphError, match="unknown paper"):
            engine.paper("nope")

    def test_invalid_query_rejects_whole_batch(self, engine):
        with pytest.raises(ConfigurationError, match="not in the index"):
            engine.execute(
                [TopKQuery(method="PR"), TopKQuery(method="WSDM")]
            )

    def test_batch_plans_shared_depth(self, engine):
        """Two pages over one ranking must not disturb each other."""
        shallow, deep = engine.execute(
            [
                TopKQuery(method="PR", k=5),
                TopKQuery(method="PR", k=5, offset=95),
            ]
        )
        assert shallow.entries[0].rank == 1
        assert deep.entries[0].rank == 96

    def test_empty_batch(self, engine):
        assert engine.execute([]) == ()

    def test_unsupported_query_type(self, engine):
        with pytest.raises(ConfigurationError, match="unsupported query"):
            engine.execute(["top_k"])


class TestBatchFileFormat:
    def test_payload_roundtrip(self):
        queries = queries_from_payload(
            [
                {"type": "top_k", "method": "pr", "k": 3, "offset": 6,
                 "year_min": 1995, "year_max": 2000},
                {"type": "top_k"},
                {"type": "paper", "id": "P1"},
                {"type": "compare", "methods": ["PR", "CC"], "k": 4},
            ]
        )
        assert queries[0] == TopKQuery(
            method="pr", k=3, offset=6, year_range=(1995.0, 2000.0)
        )
        assert queries[1] == TopKQuery()
        assert queries[2] == PaperQuery(paper_id="P1")
        assert queries[3] == CompareQuery(methods=("PR", "CC"), k=4)

    def test_half_open_year_filters(self):
        (query,) = queries_from_payload(
            [{"type": "top_k", "year_min": 1995}]
        )
        assert query.year_range == (1995.0, float("inf"))

    def test_malformed_batches_rejected(self):
        with pytest.raises(DataFormatError, match="JSON list"):
            queries_from_payload({"type": "top_k"})
        with pytest.raises(DataFormatError, match="'type'"):
            queries_from_payload([{"method": "PR"}])
        with pytest.raises(DataFormatError, match="unknown query type"):
            queries_from_payload([{"type": "nearest"}])
        with pytest.raises(DataFormatError, match="malformed"):
            queries_from_payload([{"type": "paper"}])

    def test_result_payload_shapes(self, hepth_tiny):
        index = ScoreIndex(hepth_tiny)
        index.add_method("CC")
        index.add_method("PR")
        engine = QueryEngine(
            ShardedScoreIndex.from_index(index, n_shards=2)
        )
        top = result_payload(engine.top_k("CC", k=2))
        assert top["type"] == "top_k"
        assert [row["rank"] for row in top["entries"]] == [1, 2]
        paper = result_payload(engine.paper(top["entries"][0]["paper_id"]))
        assert paper["type"] == "paper"
        assert paper["ranks"]["CC"] == 1
        compare = result_payload(engine.compare(["CC", "PR"], k=3))
        assert compare["type"] == "compare"
        assert set(compare["results"]) == {"CC", "PR"}
        assert "CC&PR" in compare["overlap"]


class TestPaperRankCounting:
    def test_rank_counting_handles_ties(self):
        """CC produces massive score ties; cross-shard tie counting
        must reproduce the global index tie-break exactly."""
        network = generate_dataset("hep-th", size="tiny", seed=5)
        index = ScoreIndex(network)
        index.add_method("CC")
        service = RankingService(index)
        engine = QueryEngine(
            ShardedScoreIndex.from_index(index, n_shards=7)
        )
        order = np.argsort(-index.scores("CC"), kind="stable")
        for position in (0, 17, network.n_papers - 1):
            pid = network.id_of(int(order[position]))
            assert engine.paper(pid) == service.paper(pid)


class TestLateMethodRegistration:
    def test_service_serves_methods_added_after_construction(
        self, hepth_tiny
    ):
        """add_method on the backing index must reach the shard store
        even though it bumps no version."""
        index = ScoreIndex(hepth_tiny)
        index.add_method("CC")
        service = RankingService(index, shards=3)
        service.top_k("CC", k=3)  # warm the store with the old labels
        index.add_method("PR")
        page = service.top_k("PR", k=5)
        assert page.method == "PR"
        details = service.paper(hepth_tiny.id_of(0))
        assert set(details.scores) == {"CC", "PR"}


class TestYearPruningInEngine:
    def test_span_confined_to_one_shard_loads_one_shard(
        self, hepth_tiny, tmp_path
    ):
        index = ScoreIndex(hepth_tiny)
        index.add_method("CC")
        store = ShardedScoreIndex.from_index(
            index, n_shards=4, partitioner="year"
        )
        store.save(str(tmp_path / "store"))
        lazy = ShardedScoreIndex.load(str(tmp_path / "store"))
        # A span strictly inside the last shard's time range.
        lo, _hi = lazy.shard_time_bounds(3)
        span = (lo + 1e-6, float("inf"))
        engine = QueryEngine(lazy)
        result = engine.top_k("CC", k=5, year_range=span)
        assert lazy.loaded_shard_count == 1  # shards 0-2 never loaded
        # Pruned shards still contribute correct (zero) totals.
        service = RankingService(index)
        assert result == service.top_k("CC", k=5, year_range=span)

    def test_pruning_never_changes_results(self, hepth_tiny):
        index = ScoreIndex(hepth_tiny)
        index.add_method("PR")
        index.add_method("CC")
        service = RankingService(index)
        engine = QueryEngine(
            ShardedScoreIndex.from_index(
                index, n_shards=7, partitioner="year"
            )
        )
        times = hepth_tiny.publication_times
        lo, hi = float(times.min()), float(times.max())
        step = (hi - lo) / 5
        for i in range(5):
            span = (lo + i * step, lo + (i + 1) * step)
            assert engine.top_k("PR", k=20, year_range=span) == (
                service.top_k("PR", k=20, year_range=span)
            )


class TestCompareMethodsValidation:
    def test_string_methods_field_rejected(self):
        with pytest.raises(DataFormatError, match="malformed 'compare'"):
            queries_from_payload([{"type": "compare", "methods": "AR"}])
