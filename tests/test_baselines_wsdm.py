"""Unit tests for the reconstructed WSDM Cup 2016 winner."""

import numpy as np
import pytest

from repro.baselines.wsdm import WSDMRanker
from repro.errors import ConfigurationError, GraphError
from tests.conftest import assert_probability_vector


class TestConfiguration:
    def test_negative_coefficients_rejected(self):
        with pytest.raises(ConfigurationError):
            WSDMRanker(alpha=-1.0)
        with pytest.raises(ConfigurationError):
            WSDMRanker(beta=-0.5)

    def test_iterations_validated(self):
        with pytest.raises(ConfigurationError):
            WSDMRanker(iterations=0)

    def test_params(self):
        params = WSDMRanker(alpha=1.7, beta=3.0, iterations=4).params()
        assert params == {"alpha": 1.7, "beta": 3.0, "iterations": 4}


class TestMetadataRequirements:
    def test_requires_authors_and_venues(self, chain):
        with pytest.raises(GraphError, match="author and venue"):
            WSDMRanker().scores(chain)

    def test_runs_with_full_metadata(self, toy):
        assert_probability_vector(WSDMRanker().scores(toy))


class TestBehaviour:
    def test_fixed_iterations_deterministic(self, dblp_tiny):
        a = WSDMRanker(iterations=5).scores(dblp_tiny)
        b = WSDMRanker(iterations=5).scores(dblp_tiny)
        assert np.array_equal(a, b)

    def test_iteration_count_changes_result(self, dblp_tiny):
        four = WSDMRanker(iterations=4).scores(dblp_tiny)
        five = WSDMRanker(iterations=5).scores(dblp_tiny)
        assert not np.allclose(four, five)

    def test_degree_prior_influences_ranking(self, dblp_tiny):
        """Larger alpha weights the in-degree prior more heavily, pulling
        the ranking toward citation count."""
        from repro.eval.metrics import spearman_rho

        heavy_in = WSDMRanker(alpha=10.0, beta=0.0).scores(dblp_tiny)
        cc = dblp_tiny.in_degree.astype(float)
        light_in = WSDMRanker(alpha=0.0, beta=10.0).scores(dblp_tiny)
        assert spearman_rho(heavy_in, cc) > spearman_rho(light_in, cc)

    def test_probability_vector_on_synthetic(self, dblp_tiny):
        assert_probability_vector(WSDMRanker().scores(dblp_tiny))
