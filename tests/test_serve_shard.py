"""Unit tests for repro.serve.shard — partitioning, sync, persistence."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, IndexIntegrityError
from repro.serve import (
    NetworkDelta,
    DeltaUpdater,
    ScoreIndex,
    ShardedScoreIndex,
)
from repro.serve.shard import _hash_assign, hash_shard_of, year_boundaries


@pytest.fixture
def indexed(hepth_tiny):
    index = ScoreIndex(hepth_tiny)
    index.add_method("PR")
    index.add_method("CC")
    return index


class TestPartitioners:
    def test_hash_is_stable_and_process_independent(self):
        # Fixed expectations pin the on-disk routing contract: a store
        # built today must route deltas identically forever.
        assert hash_shard_of("P0000001", 7) == hash_shard_of("P0000001", 7)
        values = {hash_shard_of(f"P{i:07d}", 5) for i in range(200)}
        assert values == set(range(5))  # every shard gets traffic

    def test_vectorised_hash_matches_scalar(self):
        ids = [f"paper-{i}" for i in range(500)] + ["x", "P", "Zz9"]
        vec = _hash_assign(ids, 7)
        scalar = np.array([hash_shard_of(p, 7) for p in ids])
        assert (vec == scalar).all()

    def test_year_boundaries_balance(self, hepth_tiny):
        bounds = year_boundaries(hepth_tiny.publication_times, 4)
        assert bounds.shape == (3,)
        assert (np.diff(bounds) >= 0).all()

    def test_unknown_partitioner_rejected(self, indexed):
        with pytest.raises(ConfigurationError, match="unknown partitioner"):
            ShardedScoreIndex.from_index(
                indexed, n_shards=2, partitioner="alphabetical"
            )

    def test_bad_shard_count_rejected(self, indexed):
        with pytest.raises(ConfigurationError, match="n_shards"):
            ShardedScoreIndex.from_index(indexed, n_shards=0)

    def test_methodless_index_rejected(self, hepth_tiny):
        with pytest.raises(ConfigurationError, match="no solved methods"):
            ShardedScoreIndex.from_index(ScoreIndex(hepth_tiny))


class TestShardStructure:
    @pytest.mark.parametrize("partitioner", ["hash", "year"])
    @pytest.mark.parametrize("n_shards", [1, 2, 7])
    def test_partition_covers_every_paper_once(
        self, indexed, partitioner, n_shards
    ):
        store = ShardedScoreIndex.from_index(
            indexed, n_shards=n_shards, partitioner=partitioner
        )
        seen = np.concatenate(
            [shard.global_indices for shard in store.iter_shards()]
        )
        assert np.sort(seen).tolist() == list(
            range(indexed.network.n_papers)
        )
        assert store.n_papers == indexed.network.n_papers

    def test_year_partition_is_contiguous(self, indexed):
        store = ShardedScoreIndex.from_index(
            indexed, n_shards=3, partitioner="year"
        )
        tops = [
            float(shard.times.max())
            for shard in store.iter_shards()
            if shard.n_papers
        ]
        bottoms = [
            float(shard.times.min())
            for shard in store.iter_shards()
            if shard.n_papers
        ]
        for earlier_top, later_bottom in zip(tops, bottoms[1:]):
            assert earlier_top <= later_bottom

    def test_shard_slices_match_index(self, indexed):
        store = ShardedScoreIndex.from_index(indexed, n_shards=3)
        full = indexed.scores("PR")
        for shard in store.iter_shards():
            assert (shard.scores["PR"] == full[shard.global_indices]).all()

    def test_shard_scores_read_only(self, indexed):
        store = ShardedScoreIndex.from_index(indexed, n_shards=2)
        with pytest.raises(ValueError, match="read-only"):
            store.shard(0).scores["PR"][0] = 9.9

    def test_shard_id_out_of_range(self, indexed):
        store = ShardedScoreIndex.from_index(indexed, n_shards=2)
        with pytest.raises(ConfigurationError, match="out of range"):
            store.shard(2)


class TestSyncRouting:
    def test_sync_reports_touched_shards(self, indexed):
        store = ShardedScoreIndex.from_index(indexed, n_shards=4)
        updater = DeltaUpdater(indexed, sharded=store)
        new_ids = [f"NEW-{i}" for i in range(6)]
        report = updater.apply(
            NetworkDelta(
                papers=tuple((pid, 2004.0) for pid in new_ids),
                citations=(),
            )
        )
        expected = sorted({hash_shard_of(pid, 4) for pid in new_ids})
        assert list(report.touched_shards) == expected
        assert store.version == indexed.version
        assert store.n_papers == indexed.network.n_papers

    def test_sync_refreshes_scores_without_growth(self, indexed):
        store = ShardedScoreIndex.from_index(indexed, n_shards=2)
        indexed.refresh()
        touched = store.sync()
        assert touched == ()
        assert store.version == indexed.version
        full = indexed.scores("PR")
        for shard in store.iter_shards():
            assert (shard.scores["PR"] == full[shard.global_indices]).all()

    def test_year_routing_uses_build_time_boundaries(self, indexed):
        store = ShardedScoreIndex.from_index(
            indexed, n_shards=3, partitioner="year"
        )
        updater = DeltaUpdater(indexed, sharded=store)
        # A paper far in the future lands in the last year shard.
        report = updater.apply(
            NetworkDelta(papers=(("FUTURE", 2050.0),), citations=())
        )
        assert report.touched_shards == (2,)

    def test_detached_store_cannot_sync(self, indexed, tmp_path):
        store = ShardedScoreIndex.from_index(indexed, n_shards=2)
        store.save(str(tmp_path / "store"))
        loaded = ShardedScoreIndex.load(str(tmp_path / "store"))
        with pytest.raises(ConfigurationError, match="detached"):
            loaded.sync()
        with pytest.raises(ConfigurationError, match="detached"):
            loaded.save(str(tmp_path / "other"))


class TestPersistence:
    def test_roundtrip_preserves_everything(self, indexed, tmp_path):
        store = ShardedScoreIndex.from_index(
            indexed, n_shards=3, partitioner="year"
        )
        store.save(str(tmp_path / "store"))
        loaded = ShardedScoreIndex.load(str(tmp_path / "store"))
        assert loaded.n_shards == 3
        assert loaded.partitioner == "year"
        assert loaded.version == store.version
        assert loaded.labels == store.labels
        for shard_id in range(3):
            original = store.shard(shard_id)
            restored = loaded.shard(shard_id)
            assert restored.paper_ids == original.paper_ids
            assert (
                restored.global_indices == original.global_indices
            ).all()
            for label in store.labels:
                assert (
                    restored.scores[label] == original.scores[label]
                ).all()

    def test_load_is_lazy(self, indexed, tmp_path):
        store = ShardedScoreIndex.from_index(indexed, n_shards=4)
        store.save(str(tmp_path / "store"))
        loaded = ShardedScoreIndex.load(str(tmp_path / "store"))
        assert loaded.loaded_shard_count == 0
        loaded.shard(1)
        assert loaded.loaded_shard_count == 1

    def test_single_shard_file_is_a_score_index(self, indexed, tmp_path):
        """Each shard file independently round-trips through the
        existing single-file loader — the persistence contract."""
        store = ShardedScoreIndex.from_index(indexed, n_shards=2)
        store.save(str(tmp_path / "store"))
        single = ScoreIndex.load(str(tmp_path / "store" / "shard_0000.npz"))
        shard = store.shard(0)
        assert single.labels == store.labels
        assert single.network.n_papers == shard.n_papers
        assert (single.scores("PR") == shard.scores["PR"]).all()

    def test_missing_manifest(self, tmp_path):
        with pytest.raises(IndexIntegrityError, match="manifest"):
            ShardedScoreIndex.load(str(tmp_path))

    def test_manifest_shard_count_mismatch(self, indexed, tmp_path):
        import json
        import os

        store = ShardedScoreIndex.from_index(indexed, n_shards=2)
        directory = str(tmp_path / "store")
        store.save(directory)
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["n_shards"] = 3
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        with pytest.raises(IndexIntegrityError, match="3 shards"):
            ShardedScoreIndex.load(directory)

    def test_version_mismatch_across_shards_detected(
        self, indexed, tmp_path
    ):
        import json
        import os

        store = ShardedScoreIndex.from_index(indexed, n_shards=2)
        directory = str(tmp_path / "store")
        store.save(directory)
        manifest_path = os.path.join(directory, "manifest.json")
        with open(manifest_path) as handle:
            manifest = json.load(handle)
        manifest["version"] = 41
        with open(manifest_path, "w") as handle:
            json.dump(manifest, handle)
        loaded = ShardedScoreIndex.load(directory)
        with pytest.raises(IndexIntegrityError, match="version"):
            loaded.shard(0)


class TestSpanMemoBound:
    def test_filtered_span_memos_are_capped(self, indexed):
        store = ShardedScoreIndex.from_index(indexed, n_shards=1)
        shard = store.shard(0)
        for start in range(shard.MAX_SPAN_MEMOS + 20):
            shard.order("PR", (1990.0 + start, 2000.0 + start))
        spans = sum(1 for _, span in shard._orders if span is not None)
        assert spans <= shard.MAX_SPAN_MEMOS
        # The full per-method order is never evicted.
        assert ("PR", None) in shard._orders

    def test_evicted_span_recomputes_identically(self, indexed):
        store = ShardedScoreIndex.from_index(indexed, n_shards=1)
        shard = store.shard(0)
        span = (1995.0, 1999.0)
        first = shard.order("PR", span).copy()
        for start in range(shard.MAX_SPAN_MEMOS + 5):
            shard.order("PR", (1800.0 + start, 1801.0 + start))
        assert (shard.order("PR", span) == first).all()


class TestYearPruning:
    def test_time_bounds_only_for_year_partitioner(self, indexed):
        hash_store = ShardedScoreIndex.from_index(indexed, n_shards=3)
        assert hash_store.shard_time_bounds(0) is None
        year_store = ShardedScoreIndex.from_index(
            indexed, n_shards=3, partitioner="year"
        )
        lo0, hi0 = year_store.shard_time_bounds(0)
        lo2, hi2 = year_store.shard_time_bounds(2)
        assert lo0 == float("-inf") and hi2 == float("inf")
        assert hi0 <= lo2

    def test_bounds_cover_actual_shard_times(self, indexed):
        store = ShardedScoreIndex.from_index(
            indexed, n_shards=4, partitioner="year"
        )
        for shard_id in range(4):
            shard = store.shard(shard_id)
            if shard.n_papers == 0:
                continue
            lo, hi = store.shard_time_bounds(shard_id)
            assert lo <= float(shard.times.min())
            assert float(shard.times.max()) <= hi


class TestReadDuringSync:
    """Queries racing a sync see one whole generation, never a mix.

    The store publishes each rebuild as a single snapshot swap;
    a batch captured against the old generation completes against it
    bit-identically while the new one goes live.  Before the snapshot
    refactor this test crashed (readers observed the half-rebuilt
    shard dict) or returned pages mixing two versions.
    """

    def _reference_results(self, network, base, delta, queries):
        """Direct single-version results at version 0 and version 1."""
        from repro.serve import RankingService

        refs = {}
        index = ScoreIndex(base)
        index.add_method("PR")
        index.add_method("CC")
        service = RankingService(index)
        refs[0] = service.engine.execute(queries)
        service.update(delta)
        refs[1] = service.engine.execute(queries)
        return refs

    def test_threaded_queries_old_or_new_never_torn(self, hepth_tiny):
        import threading

        from repro.graph.temporal import chronological_order
        from repro.serve import (
            PaperQuery,
            QueryEngine,
            TopKQuery,
            delta_between,
        )
        import numpy as np

        order = chronological_order(hepth_tiny)
        base = hepth_tiny.subnetwork(
            np.sort(order[: hepth_tiny.n_papers - 25])
        )
        delta = delta_between(base, hepth_tiny)
        queries = (
            TopKQuery(method="PR", k=20),
            TopKQuery(method="CC", k=10, offset=5),
            PaperQuery(paper_id=base.paper_ids[0]),
        )
        refs = self._reference_results(hepth_tiny, base, delta, queries)

        live = ScoreIndex(base)
        live.add_method("PR")
        live.add_method("CC")
        store = ShardedScoreIndex.from_index(live, n_shards=4)
        engine = QueryEngine(store)
        updater = DeltaUpdater(live, sharded=store)

        observed: list[tuple[int, tuple]] = []
        failures: list[BaseException] = []
        done = threading.Event()
        lock = threading.Lock()

        def reader():
            try:
                while not done.is_set():
                    version, results = engine.execute_versioned(queries)
                    with lock:
                        observed.append((version, results))
            except BaseException as error:  # noqa: BLE001
                failures.append(error)

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            # Same-version rebuilds first: the store swaps generations
            # under the readers without any version change...
            for _ in range(10):
                store.sync()
            # ...then the real thing: a delta lands mid-traffic.
            updater.apply(delta)
            for _ in range(10):
                store.sync()
        finally:
            done.set()
            for thread in threads:
                thread.join(timeout=30)

        assert not failures, failures
        assert observed
        versions = {version for version, _ in observed}
        assert versions <= {0, 1}
        for version, results in observed:
            assert results == refs[version], (
                f"torn read at version {version}"
            )
