"""Fleet-merge correctness properties for the deep-observability stack.

The supervisor never averages derived values — it merges *raw* state
(bucket counts, counter values, profile stack counts) and derives
quantiles/burn rates/windows from the merged state.  These hypothesis
properties pin the discipline: for arbitrary traffic splits across N
workers, the merged computation must equal a single registry that saw
the concatenated observations.  Runs derandomized under the repro-ci
profile (see conftest.py).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from obsschema import validate_profile, validate_slo
from repro.obs.profile import merge_profile_states, render_profile
from repro.obs.registry import (
    MetricsRegistry,
    families_state,
    merge_family_states,
    quantile_from_buckets,
)
from repro.obs.slo import SLOEngine
from repro.obs.tsdb import TimeSeriesStore

_BOUNDS = (0.1, 0.25, 0.5, 1.0)

_observations = st.lists(
    st.floats(min_value=0.0, max_value=2.0, allow_nan=False,
              allow_infinity=False, width=32),
    max_size=30,
)


def _sample_map(state):
    """Family-state JSON as a ``{(name, suffix, labels): value}`` map."""
    samples = {}
    for family in state:
        for sample in family["samples"]:
            key = (
                family["name"],
                sample["suffix"],
                tuple(tuple(pair) for pair in sample["labels"]),
            )
            assert key not in samples, f"duplicate series {key}"
            samples[key] = sample["value"]
    return samples


def _bucket_counts(state, name):
    """Raw (non-cumulative) bucket counts of one histogram family."""
    buckets = []
    for family in state:
        if family["name"] != name:
            continue
        for sample in family["samples"]:
            if sample["suffix"] != "_bucket":
                continue
            le = dict(sample["labels"])["le"]
            bound = float("inf") if le == "+Inf" else float(le)
            buckets.append((bound, sample["value"]))
    buckets.sort()
    cumulative = [value for _, value in buckets]
    return [
        int(value - (cumulative[i - 1] if i else 0))
        for i, value in enumerate(cumulative)
    ]


class TestHistogramMerge:
    @settings(max_examples=50, deadline=None)
    @given(per_worker=st.lists(_observations, min_size=1, max_size=4))
    def test_merged_buckets_and_quantiles_equal_concatenation(
        self, per_worker
    ):
        states = []
        for observations in per_worker:
            registry = MetricsRegistry()
            histogram = registry.histogram(
                "unit_latency_seconds", "", bounds=_BOUNDS
            )
            for value in observations:
                histogram.observe(value)
            states.append(families_state(registry.collect()))
        merged = families_state(merge_family_states(states))

        single = MetricsRegistry()
        histogram = single.histogram(
            "unit_latency_seconds", "", bounds=_BOUNDS
        )
        everything = [v for obs in per_worker for v in obs]
        for value in everything:
            histogram.observe(value)
        expected = families_state(single.collect())

        # Bucket-count and count/sum equality up to float summation
        # order (the _sum sample is a float sum; everything else is
        # integer-exact).
        merged_map = _sample_map(merged)
        expected_map = _sample_map(expected)
        assert merged_map.keys() == expected_map.keys()
        for key, value in expected_map.items():
            if key[1] == "_sum":
                assert abs(merged_map[key] - value) < 1e-6
            else:
                assert merged_map[key] == value

        # The derived value: quantiles computed from merged buckets
        # equal quantiles computed from the concatenated registry's
        # buckets — because the raw counts are identical.
        merged_counts = _bucket_counts(merged, "unit_latency_seconds")
        expected_counts = _bucket_counts(
            expected, "unit_latency_seconds"
        )
        assert merged_counts == expected_counts
        total = sum(merged_counts)
        for q in (0.5, 0.95, 0.99):
            assert quantile_from_buckets(
                _BOUNDS, merged_counts, total, _BOUNDS[-1], q
            ) == quantile_from_buckets(
                _BOUNDS, expected_counts, total, _BOUNDS[-1], q
            )

    @settings(max_examples=50, deadline=None)
    @given(
        per_worker=st.lists(
            st.lists(st.integers(0, 50), min_size=2, max_size=2),
            min_size=1,
            max_size=4,
        )
    )
    def test_merged_counters_are_exact_sums(self, per_worker):
        states = []
        for good, bad in per_worker:
            registry = MetricsRegistry()
            counter = registry.counter(
                "unit_responses_total", "", ("status",)
            )
            counter.inc(good, status="200")
            counter.inc(bad, status="500")
            states.append(families_state(registry.collect()))
        merged = _sample_map(
            families_state(merge_family_states(states))
        )
        key_200 = ("unit_responses_total", "", (("status", "200"),))
        key_500 = ("unit_responses_total", "", (("status", "500"),))
        assert merged[key_200] == sum(g for g, _ in per_worker)
        assert merged[key_500] == sum(b for _, b in per_worker)


class TestSLOFleetEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        per_worker=st.lists(
            st.tuples(
                st.integers(0, 20),  # good responses
                st.integers(0, 20),  # 5xx responses
                st.integers(0, 20),  # fast (0.05s) query latencies
                st.integers(0, 20),  # slow (1.0s) query latencies
            ),
            min_size=1,
            max_size=3,
        )
    )
    def test_fleet_burn_rates_equal_single_registry(self, per_worker):
        def make_registry():
            registry = MetricsRegistry()
            responses = registry.counter(
                "repro_gateway_responses_total",
                "",
                ("endpoint", "status"),
            )
            latency = registry.histogram(
                "repro_gateway_request_latency_seconds",
                "",
                ("endpoint",),
                bounds=_BOUNDS,
            )
            return registry, responses, latency

        workers = [make_registry() for _ in per_worker]
        single_registry, single_responses, single_latency = (
            make_registry()
        )

        def drive(responses, latency, good, bad, fast, slow):
            responses.inc(good, endpoint="top", status="200")
            responses.inc(bad, endpoint="top", status="500")
            for _ in range(fast):
                latency.observe(0.05, endpoint="top")
            for _ in range(slow):
                latency.observe(1.0, endpoint="top")

        def fleet_families():
            return merge_family_states(
                [
                    families_state(registry.collect())
                    for registry, _, _ in workers
                ]
            )

        fleet_store = TimeSeriesStore(fleet_families, interval=0.0)
        single_store = TimeSeriesStore(
            single_registry.collect, interval=0.0
        )
        fleet_store.scrape_once(now=0.0)
        single_store.scrape_once(now=0.0)
        for (_, responses, latency), counts in zip(workers, per_worker):
            drive(responses, latency, *counts)
            drive(single_responses, single_latency, *counts)
        fleet_store.scrape_once(now=60.0)
        single_store.scrape_once(now=60.0)

        fleet = SLOEngine(fleet_store).evaluate(now=60.0)
        single = SLOEngine(single_store).evaluate(now=60.0)
        validate_slo(fleet)
        # Same traffic, same windows: identical documents — burn
        # rates, compliance, and alert states all derive from the
        # integer-exact merged counters.
        assert fleet == single


class TestTSDBWindows:
    @settings(max_examples=50, deadline=None)
    @given(
        deltas=st.lists(
            st.floats(min_value=0.125, max_value=100.0,
                      allow_nan=False, width=32),
            min_size=1,
            max_size=20,
        ),
        window=st.floats(min_value=0.5, max_value=500.0,
                         allow_nan=False, width=32),
    )
    def test_window_selects_oldest_point_at_or_after_anchor(
        self, deltas, window
    ):
        registry = MetricsRegistry()
        counter = registry.counter("unit_ticks_total", "")
        store = TimeSeriesStore(registry.collect, interval=0.0)
        timestamps = []
        now = 0.0
        for delta in deltas:
            now += delta
            counter.inc()
            timestamps.append(store.scrape_once(now=now))
        assert timestamps == sorted(timestamps)
        pair = store.window(window, now=timestamps[-1])
        assert pair is not None
        old, new = pair
        assert new["ts"] == timestamps[-1]
        anchor = timestamps[-1] - window
        inside = [ts for ts in timestamps if ts >= anchor]
        assert old["ts"] == (inside[0] if inside else timestamps[-1])


class TestProfileMerge:
    _stacks = st.lists(
        st.tuples(
            st.sampled_from(["top", "paper", "compare", "idle"]),
            st.lists(st.sampled_from(["a (m.py:1)", "b (m.py:2)",
                                      "c (m.py:3)"]), max_size=3),
            st.integers(1, 5),
        ),
        max_size=12,
    )

    @settings(max_examples=50, deadline=None)
    @given(per_worker=st.lists(_stacks, min_size=1, max_size=4))
    def test_merge_equals_direct_totals(self, per_worker):
        def fold(entries):
            totals = {}
            for phase, frames, count in entries:
                key = (phase, tuple(frames))
                totals[key] = totals.get(key, 0) + count
            return totals

        states = []
        for entries in per_worker:
            totals = fold(entries)
            states.append(
                {
                    "running": False,
                    "hz": 67.0,
                    "samples_total": sum(totals.values()),
                    "dropped_stacks": 0,
                    "started_unix": 100.0,
                    "stacks": [
                        {"phase": phase, "frames": list(frames),
                         "count": count}
                        for (phase, frames), count in totals.items()
                    ],
                    "samples_by_request": {},
                }
            )
        merged = merge_profile_states(states)
        expected = fold(
            entry for entries in per_worker for entry in entries
        )
        assert {
            (s["phase"], tuple(s["frames"])): s["count"]
            for s in merged["stacks"]
        } == expected
        assert merged["samples_total"] == sum(expected.values())
        document = render_profile(merged, top=5)
        validate_profile(document)
