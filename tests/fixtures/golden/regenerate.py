"""Regenerate the golden regression fixtures.

Run from the repository root::

    PYTHONPATH=src python tests/fixtures/golden/regenerate.py

Writes two files next to this script:

* ``network.json`` — a frozen ~120-paper citation network with author
  and venue metadata (a chronological prefix of the seeded synthetic
  DBLP corpus, flattened to plain JSON so the fixture no longer
  depends on the generator staying fixed);
* ``scores.json`` — the score vector of every golden method
  (AR/PR/CR/FR/WSDM/RAM/ECM at registry-default parameters) over that
  network, serialised as JSON numbers (Python float serialisation
  round-trips ``float64`` exactly).

``tests/test_golden.py`` recomputes the scores from ``network.json``
and fails with a per-method diff if any numerical path drifts.  Only
regenerate after an *intentional* change to a scoring path, and say so
in the commit message — these fixtures exist to make silent drift
impossible.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.baselines import make_method
from repro.graph.citation_network import CitationNetwork
from repro.synth.profiles import generate_dataset

HERE = os.path.dirname(os.path.abspath(__file__))

#: The golden method lineup (registry labels, default parameters).
GOLDEN_METHODS = ("AR", "PR", "CR", "FR", "WSDM", "RAM", "ECM")

#: Papers kept from the seeded corpus (its index order is chronological).
PREFIX = 120


def frozen_network() -> CitationNetwork:
    """The chronological prefix of the seeded DBLP corpus."""
    corpus = generate_dataset("dblp", size="tiny", seed=42)
    return corpus.subnetwork(np.arange(PREFIX))


def network_to_payload(network: CitationNetwork) -> dict:
    return {
        "paper_ids": list(network.paper_ids),
        "publication_times": [float(t) for t in network.publication_times],
        "citing": [int(i) for i in network.citing],
        "cited": [int(i) for i in network.cited],
        "paper_authors": [
            list(authors) for authors in (network.paper_authors or ())
        ],
        "paper_venues": [int(v) for v in network.paper_venues],
    }


def main() -> None:
    network = frozen_network()
    with open(
        os.path.join(HERE, "network.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(network_to_payload(network), handle, indent=1)
        handle.write("\n")

    scores = {
        label: [float(s) for s in make_method(label).scores(network)]
        for label in GOLDEN_METHODS
    }
    with open(
        os.path.join(HERE, "scores.json"), "w", encoding="utf-8"
    ) as handle:
        json.dump(scores, handle, indent=1)
        handle.write("\n")
    print(
        f"froze {network.n_papers} papers / {network.n_citations} "
        f"citations and {len(GOLDEN_METHODS)} score vectors"
    )


if __name__ == "__main__":
    main()
