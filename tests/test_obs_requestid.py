"""Request-id isolation under concurrency.

The request id lives in a :data:`contextvars.ContextVar`; the gateway
binds one per request and the coalescer copies each submitter's
context across its executor hand-off.  These tests prove the id never
*leaks*: a task (or thread) always observes the id it bound, no matter
how its requests interleave with others inside shared batches — the
hypothesis cases drive randomised fleets of concurrently coalesced
submits, the threaded cases hammer the logging filter directly.
"""

from __future__ import annotations

import asyncio
import io
import json
import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.gateway import RequestCoalescer
from repro.obs.logging import (
    MAX_REQUEST_ID_BYTES,
    bind_request_id,
    clear_worker_identity,
    configure_logging,
    current_request_id,
    get_logger,
    reset_logging,
    sanitize_request_id,
    set_worker_identity,
)
from repro.obs.trace import disable_tracing, enable_tracing
from repro.serve import RankingService, ScoreIndex, TopKQuery
from repro.synth import toy_network


def _make_service() -> RankingService:
    index = ScoreIndex(toy_network())
    index.add_method("CC")
    return RankingService(index)


# One backend for every hypothesis example: building the index is the
# slow part and the property only exercises context plumbing.
_SERVICE = _make_service()


@settings(max_examples=25, deadline=None)
@given(
    ks=st.lists(st.integers(min_value=1, max_value=5), min_size=1,
                max_size=12),
    stagger=st.lists(st.booleans(), min_size=12, max_size=12),
)
def test_coalesced_submits_keep_their_own_request_id(ks, stagger):
    """Every submitter still sees its own id after its batch resolves.

    Each task binds a distinct request id, submits through the shared
    coalescer (so several tasks land in the same engine batch), and
    checks the contextvar before, after, and around an extra await —
    a leak from the batch leader's context would surface here.
    """
    observed: dict[str, list[str | None]] = {}

    async def one_request(index: int, k: int) -> None:
        rid = f"req-{index}"
        with bind_request_id(rid):
            if stagger[index % len(stagger)]:
                await asyncio.sleep(0)  # vary batch composition
            assert current_request_id() == rid
            version, page = await coalescer.submit(
                TopKQuery(method="CC", k=k)
            )
            assert version == 0
            assert len(page.paper_ids) <= k
            after = current_request_id()
            await asyncio.sleep(0)
            observed[rid] = [after, current_request_id()]
        assert current_request_id() is None

    async def main() -> None:
        try:
            await asyncio.gather(
                *(one_request(i, k) for i, k in enumerate(ks))
            )
        finally:
            await coalescer.close()

    coalescer = RequestCoalescer(_SERVICE)
    asyncio.run(main())
    assert observed == {
        f"req-{i}": [f"req-{i}", f"req-{i}"] for i in range(len(ks))
    }


def test_batch_trace_attributes_every_coalesced_request_id():
    """The leader's ``engine.batch`` span lists all coalesced ids."""
    collector = enable_tracing()
    try:
        coalescer = RequestCoalescer(_SERVICE)

        async def one_request(index: int) -> None:
            from repro.obs.trace import start_trace

            rid = f"trace-req-{index}"
            with bind_request_id(rid):
                with start_trace("gateway.request", request_id=rid):
                    await coalescer.submit(TopKQuery(method="CC", k=2))

        async def main() -> None:
            try:
                await asyncio.gather(*(one_request(i) for i in range(6)))
            finally:
                await coalescer.close()

        asyncio.run(main())
        traces = collector.recent()
        assert len(traces) == 6
        submitted = {f"trace-req-{i}" for i in range(6)}
        attributed: set[str] = set()
        for trace in traces:
            for child in trace["spans"]:
                if child["name"] != "engine.batch":
                    continue
                ids = child["attrs"]["request_ids"]
                # The batch executes under its leader's context, so
                # the span lands in the leader's own trace.
                assert trace["request_id"] in ids
                attributed.update(ids)
        # Across all batches, every submit was attributed exactly once.
        assert attributed == submitted
    finally:
        disable_tracing()


@settings(max_examples=10, deadline=None)
@given(st.lists(st.text(alphabet="abcdef0123456789", min_size=4,
                        max_size=12), min_size=2, max_size=8,
                unique=True))
def test_threaded_log_records_carry_the_binding_threads_id(rids):
    """Concurrent threads each log under their own bound id."""
    sink = io.StringIO()
    lock = threading.Lock()
    configure_logging("INFO", json=True, stream=sink)
    try:
        logger = get_logger("leaktest")
        barrier = threading.Barrier(len(rids))

        def worker(rid: str) -> None:
            with bind_request_id(rid):
                barrier.wait()  # maximise interleaving
                for _ in range(20):
                    with lock:  # StringIO writes are not atomic
                        logger.info("ping", extra={"expected": rid})
                assert current_request_id() == rid
            assert current_request_id() is None

        threads = [
            threading.Thread(target=worker, args=(rid,)) for rid in rids
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        reset_logging()
    lines = sink.getvalue().strip().splitlines()
    assert len(lines) == 20 * len(rids)
    for line in lines:
        entry = json.loads(line)
        assert entry["request_id"] == entry["expected"]


class TestSanitizeRequestId:
    """The adoption gate for client-supplied ``X-Request-Id`` headers.

    The id lands verbatim in JSON log lines, trace trees, and profiler
    attribution keys, so a hostile header must come out either clean
    or rejected (``None`` — the caller keeps its generated id).
    """

    def test_clean_ids_pass_through(self):
        assert sanitize_request_id("trace-abc-123") == "trace-abc-123"
        assert sanitize_request_id("  padded  ") == "padded"

    @pytest.mark.parametrize(
        "hostile",
        [
            "evil\x01id",
            "a\tb",
            "crlf\r\nInjected-Header: gotcha",
            "newline\nonly",
            "del\x7fchar",
            "\x00",
        ],
    )
    def test_control_characters_reject_the_whole_id(self, hostile):
        assert sanitize_request_id(hostile) is None

    def test_oversized_ids_truncate_instead_of_rejecting(self):
        assert sanitize_request_id("x" * 300) == "x" * 128
        boundary = "y" * MAX_REQUEST_ID_BYTES
        assert sanitize_request_id(boundary) == boundary

    def test_truncation_happens_before_the_control_scan(self):
        # A control character beyond the cap is gone by the time the
        # scan runs: the surviving prefix is clean, so it is adopted.
        assert sanitize_request_id("x" * 128 + "\n") == "x" * 128

    def test_empty_and_absent_ids_fall_back(self):
        assert sanitize_request_id(None) is None
        assert sanitize_request_id("") is None
        assert sanitize_request_id("   ") is None

    @settings(max_examples=50, deadline=None)
    @given(st.text(max_size=200))
    def test_output_is_always_clean_and_bounded(self, raw):
        cleaned = sanitize_request_id(raw)
        if cleaned is not None:
            assert 0 < len(cleaned) <= MAX_REQUEST_ID_BYTES
            assert all(
                ord(c) >= 0x20 and ord(c) != 0x7F for c in cleaned
            )


class TestWorkerIdentityInLogs:
    """Every fleet log line says which process wrote it."""

    def _one_entry(self, *, extra=None):
        sink = io.StringIO()
        configure_logging("INFO", json=True, stream=sink)
        try:
            get_logger("fleettest").info("ping", extra=extra or {})
        finally:
            reset_logging()
        return json.loads(sink.getvalue().strip())

    def test_worker_fields_appear_when_identity_is_set(self):
        set_worker_identity("3", pid=4242)
        try:
            entry = self._one_entry()
        finally:
            clear_worker_identity()
        assert entry["worker"] == "3"
        assert entry["worker_pid"] == 4242

    def test_supervisor_label_is_a_plain_string(self):
        set_worker_identity("supervisor")
        try:
            entry = self._one_entry()
        finally:
            clear_worker_identity()
        assert entry["worker"] == "supervisor"
        assert isinstance(entry["worker_pid"], int)

    def test_identity_beats_a_colliding_extra_field(self):
        # The emitting process's identity is authoritative: a log call
        # cannot masquerade as another worker via ``extra=``.
        set_worker_identity("1")
        try:
            entry = self._one_entry(extra={"worker": "99"})
        finally:
            clear_worker_identity()
        assert entry["worker"] == "1"

    def test_no_worker_fields_outside_fleet_mode(self):
        clear_worker_identity()
        entry = self._one_entry()
        assert "worker" not in entry
        assert "worker_pid" not in entry
