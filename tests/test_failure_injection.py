"""Failure-injection tests: corrupt inputs, degenerate networks, and
adversarial configurations must fail loudly (or degrade gracefully where
the API documents it) — never return silently wrong rankings."""

import json
import os

import numpy as np
import pytest

from repro.baselines import METHOD_REGISTRY, make_method
from repro.errors import (
    ConfigurationError,
    DataFormatError,
    EvaluationError,
    GraphError,
    IndexIntegrityError,
    ReproError,
)
from repro.graph.builder import NetworkBuilder
from repro.graph.citation_network import CitationNetwork


def edgeless(n: int, *, spread: float = 1.0) -> CitationNetwork:
    """n isolated papers spanning `spread` years."""
    times = 2000.0 + np.linspace(0.0, spread, n)
    return CitationNetwork([f"p{i}" for i in range(n)], times, [], [])


class TestDegenerateNetworks:
    def test_every_method_handles_edgeless_network(self):
        """No citations at all: methods must still return valid scores
        (uniform-ish), not crash or divide by zero."""
        network = edgeless(6)
        for name in METHOD_REGISTRY:
            if name in ("FR", "WSDM"):
                continue  # require metadata, tested separately
            if name in ("AR", "NO-ATT"):
                method = make_method(name, decay_rate=-0.5)
            else:
                method = make_method(name)
            scores = method.scores(network)
            assert np.all(np.isfinite(scores)), name
            assert scores.min() >= 0, name

    def test_single_useful_paper_network(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 2000.0)
        builder.add_paper("b", 2001.0, references=["a"])
        network = builder.build()
        scores = make_method("AR", decay_rate=-0.5).scores(network)
        assert scores.sum() == pytest.approx(1.0)

    def test_same_instant_publications(self):
        """All papers published at the same instant: ages are all zero,
        recency must degrade to uniform rather than NaN."""
        network = CitationNetwork(
            ["x", "y", "z"], [2000.0] * 3, [], []
        )
        from repro.core.recency import recency_vector

        vector = recency_vector(network, -1.0)
        assert np.allclose(vector, 1 / 3)

    def test_attrank_fit_fails_loudly_on_edgeless_network(self):
        """Auto-fitting w needs citation ages; with none the error must
        be a ReproError, not an inscrutable numpy failure."""
        with pytest.raises(ReproError):
            make_method("AR").scores(edgeless(5))


class TestCorruptFiles:
    def test_truncated_npz(self, toy, tmp_path):
        from repro.io.serialize import load_network, save_network

        path = str(tmp_path / "net.npz")
        save_network(toy, path)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[: len(raw) // 2])
        with pytest.raises(Exception):  # zipfile/numpy error surface
            load_network(path)

    def test_binary_garbage_edge_file(self, tmp_path):
        from repro.io.edgelist import load_edge_list

        edges = tmp_path / "edges.bin"
        edges.write_bytes(bytes(range(256)))
        times = tmp_path / "times.txt"
        times.write_text("a 2000\n")
        with pytest.raises(DataFormatError):
            load_edge_list(str(edges), str(times))

    def test_empty_metadata_csv(self, tmp_path):
        from repro.io.edgelist import load_csv_dataset

        metadata = tmp_path / "papers.csv"
        metadata.write_text("")
        citations = tmp_path / "citations.csv"
        citations.write_text("a,b\n")
        with pytest.raises(DataFormatError):
            load_csv_dataset(str(metadata), str(citations))


def _flip_byte(path: str, offset: int) -> None:
    raw = bytearray(open(path, "rb").read())
    raw[offset] ^= 0xFF
    open(path, "wb").write(bytes(raw))


class TestCorruptServingFiles:
    """The serving stack's on-disk formats must fail with *typed*
    errors on corruption — never a bare zipfile/zlib/KeyError."""

    @pytest.fixture
    def shard_dir(self, toy, tmp_path) -> str:
        from repro.serve import ScoreIndex, ShardedScoreIndex

        index = ScoreIndex(toy)
        index.add_method("CC")
        directory = str(tmp_path / "store")
        ShardedScoreIndex.from_index(index, n_shards=2).save(directory)
        return directory

    def test_truncated_shard_npz(self, shard_dir):
        from repro.serve import ShardedScoreIndex

        path = os.path.join(shard_dir, "shard_0000.npz")
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[: len(raw) // 2])
        store = ShardedScoreIndex.load(shard_dir)  # manifest-only, lazy
        with pytest.raises(IndexIntegrityError, match="not a readable"):
            store.shard(0)

    def test_bit_flipped_shard_npz(self, shard_dir):
        from repro.serve import ShardedScoreIndex

        path = os.path.join(shard_dir, "shard_0000.npz")
        _flip_byte(path, os.path.getsize(path) // 2)
        store = ShardedScoreIndex.load(shard_dir)
        with pytest.raises(IndexIntegrityError):
            store.shard(0)

    def test_bit_flipped_index_npz(self, toy, tmp_path):
        from repro.serve import ScoreIndex

        index = ScoreIndex(toy)
        index.add_method("CC")
        path = str(tmp_path / "idx.npz")
        index.save(path)
        _flip_byte(path, os.path.getsize(path) // 2)
        with pytest.raises(DataFormatError):
            ScoreIndex.load(path)


class TestCorruptCheckpoints:
    """`repro stream resume` against a damaged checkpoint must exit 1
    with a typed one-line error, not a traceback."""

    @pytest.fixture
    def replayed(self, toy, tmp_path, capsys):
        from repro.cli import main
        from repro.io.serialize import save_network

        network_file = str(tmp_path / "net.npz")
        save_network(toy, network_file)
        log_file = str(tmp_path / "events.jsonl")
        assert main(
            ["stream", "extract", "--input", network_file,
             "--output", log_file]
        ) == 0
        ckpt = str(tmp_path / "ckpt")
        assert main(
            ["stream", "replay", "--log", log_file, "--methods", "CC",
             "--batch-size", "2", "--bootstrap-size", "4",
             "--max-batches", "2", "--checkpoint-dir", ckpt,
             "--checkpoint-every", "1"]
        ) == 0
        capsys.readouterr()
        return log_file, ckpt

    def test_corrupted_digest_is_a_stream_error(self, replayed, capsys):
        from repro.cli import main

        log_file, ckpt = replayed
        manifest = os.path.join(ckpt, "checkpoint.json")
        payload = json.load(open(manifest))
        payload["log_digest"] = "0" * len(payload["log_digest"])
        json.dump(payload, open(manifest, "w"))
        code = main(
            ["stream", "resume", "--checkpoint", ckpt, "--log", log_file]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "error: [StreamError]" in err and "digest" in err

    def test_corrupted_checkpoint_index_is_typed(self, replayed, capsys):
        from repro.cli import main

        log_file, ckpt = replayed
        (index_file,) = [
            name for name in os.listdir(ckpt) if name.endswith(".npz")
        ]
        path = os.path.join(ckpt, index_file)
        _flip_byte(path, os.path.getsize(path) // 2)
        code = main(
            ["stream", "resume", "--checkpoint", ckpt, "--log", log_file]
        )
        err = capsys.readouterr().err
        assert code == 1
        assert "error: [DataFormatError]" in err


class TestAdversarialConfiguration:
    def test_coefficients_fuzz(self):
        """Random invalid coefficient triples never construct."""
        from repro.core.attrank import AttRank

        rng = np.random.default_rng(0)
        for _ in range(50):
            alpha, beta, gamma = rng.uniform(-0.5, 1.5, size=3)
            if (
                0 <= alpha <= 1
                and 0 <= beta <= 1
                and 0 <= gamma <= 1
                and abs(alpha + beta + gamma - 1) <= 1e-6
            ):
                AttRank(alpha=alpha, beta=beta, gamma=gamma)
            else:
                with pytest.raises(ConfigurationError):
                    AttRank(alpha=alpha, beta=beta, gamma=gamma)

    def test_split_ratio_fuzz(self, toy):
        from repro.eval.split import split_by_ratio

        for ratio in (-1.0, 0.0, 0.5, 1.0, 2.01, 100.0, float("inf")):
            with pytest.raises(EvaluationError):
                split_by_ratio(toy, ratio)

    def test_subnetwork_index_fuzz(self, toy):
        rng = np.random.default_rng(1)
        for _ in range(20):
            indices = rng.integers(-3, 12, size=5)
            valid = (
                np.unique(indices).size == indices.size
                and indices.min() >= 0
                and indices.max() < toy.n_papers
            )
            if valid:
                toy.subnetwork(indices)
            else:
                with pytest.raises(GraphError):
                    toy.subnetwork(indices)
