"""Failure-injection tests: corrupt inputs, degenerate networks, and
adversarial configurations must fail loudly (or degrade gracefully where
the API documents it) — never return silently wrong rankings."""

import numpy as np
import pytest

from repro.baselines import METHOD_REGISTRY, make_method
from repro.errors import (
    ConfigurationError,
    DataFormatError,
    EvaluationError,
    GraphError,
    ReproError,
)
from repro.graph.builder import NetworkBuilder
from repro.graph.citation_network import CitationNetwork


def edgeless(n: int, *, spread: float = 1.0) -> CitationNetwork:
    """n isolated papers spanning `spread` years."""
    times = 2000.0 + np.linspace(0.0, spread, n)
    return CitationNetwork([f"p{i}" for i in range(n)], times, [], [])


class TestDegenerateNetworks:
    def test_every_method_handles_edgeless_network(self):
        """No citations at all: methods must still return valid scores
        (uniform-ish), not crash or divide by zero."""
        network = edgeless(6)
        for name in METHOD_REGISTRY:
            if name in ("FR", "WSDM"):
                continue  # require metadata, tested separately
            if name in ("AR", "NO-ATT"):
                method = make_method(name, decay_rate=-0.5)
            else:
                method = make_method(name)
            scores = method.scores(network)
            assert np.all(np.isfinite(scores)), name
            assert scores.min() >= 0, name

    def test_single_useful_paper_network(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 2000.0)
        builder.add_paper("b", 2001.0, references=["a"])
        network = builder.build()
        scores = make_method("AR", decay_rate=-0.5).scores(network)
        assert scores.sum() == pytest.approx(1.0)

    def test_same_instant_publications(self):
        """All papers published at the same instant: ages are all zero,
        recency must degrade to uniform rather than NaN."""
        network = CitationNetwork(
            ["x", "y", "z"], [2000.0] * 3, [], []
        )
        from repro.core.recency import recency_vector

        vector = recency_vector(network, -1.0)
        assert np.allclose(vector, 1 / 3)

    def test_attrank_fit_fails_loudly_on_edgeless_network(self):
        """Auto-fitting w needs citation ages; with none the error must
        be a ReproError, not an inscrutable numpy failure."""
        with pytest.raises(ReproError):
            make_method("AR").scores(edgeless(5))


class TestCorruptFiles:
    def test_truncated_npz(self, toy, tmp_path):
        from repro.io.serialize import load_network, save_network

        path = str(tmp_path / "net.npz")
        save_network(toy, path)
        raw = open(path, "rb").read()
        open(path, "wb").write(raw[: len(raw) // 2])
        with pytest.raises(Exception):  # zipfile/numpy error surface
            load_network(path)

    def test_binary_garbage_edge_file(self, tmp_path):
        from repro.io.edgelist import load_edge_list

        edges = tmp_path / "edges.bin"
        edges.write_bytes(bytes(range(256)))
        times = tmp_path / "times.txt"
        times.write_text("a 2000\n")
        with pytest.raises(DataFormatError):
            load_edge_list(str(edges), str(times))

    def test_empty_metadata_csv(self, tmp_path):
        from repro.io.edgelist import load_csv_dataset

        metadata = tmp_path / "papers.csv"
        metadata.write_text("")
        citations = tmp_path / "citations.csv"
        citations.write_text("a,b\n")
        with pytest.raises(DataFormatError):
            load_csv_dataset(str(metadata), str(citations))


class TestAdversarialConfiguration:
    def test_coefficients_fuzz(self):
        """Random invalid coefficient triples never construct."""
        from repro.core.attrank import AttRank

        rng = np.random.default_rng(0)
        for _ in range(50):
            alpha, beta, gamma = rng.uniform(-0.5, 1.5, size=3)
            if (
                0 <= alpha <= 1
                and 0 <= beta <= 1
                and 0 <= gamma <= 1
                and abs(alpha + beta + gamma - 1) <= 1e-6
            ):
                AttRank(alpha=alpha, beta=beta, gamma=gamma)
            else:
                with pytest.raises(ConfigurationError):
                    AttRank(alpha=alpha, beta=beta, gamma=gamma)

    def test_split_ratio_fuzz(self, toy):
        from repro.eval.split import split_by_ratio

        for ratio in (-1.0, 0.0, 0.5, 1.0, 2.01, 100.0, float("inf")):
            with pytest.raises(EvaluationError):
                split_by_ratio(toy, ratio)

    def test_subnetwork_index_fuzz(self, toy):
        rng = np.random.default_rng(1)
        for _ in range(20):
            indices = rng.integers(-3, 12, size=5)
            valid = (
                np.unique(indices).size == indices.size
                and indices.min() >= 0
                and indices.max() < toy.n_papers
            )
            if valid:
                toy.subnetwork(indices)
            else:
                with pytest.raises(GraphError):
                    toy.subnetwork(indices)
