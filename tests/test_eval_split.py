"""Unit tests for repro.eval.split (the test-ratio methodology)."""

import numpy as np
import pytest

from repro.errors import EvaluationError
from repro.eval.split import DEFAULT_TEST_RATIOS, split_by_ratio


class TestSplitSizes:
    def test_current_is_older_half(self, toy):
        split = split_by_ratio(toy, 1.5)
        assert split.current.n_papers == 4
        assert set(split.current.paper_ids) == {"A", "B", "C", "D"}

    def test_future_count_by_ratio(self, toy):
        split = split_by_ratio(toy, 1.5)
        assert split.n_future_papers == 6  # 1.5 * 4

    def test_ratio_two_uses_everything(self, toy):
        split = split_by_ratio(toy, 2.0)
        assert split.n_future_papers == toy.n_papers

    def test_ratio_bounds(self, toy):
        with pytest.raises(EvaluationError):
            split_by_ratio(toy, 1.0)
        with pytest.raises(EvaluationError):
            split_by_ratio(toy, 2.5)

    def test_custom_fraction(self, toy):
        split = split_by_ratio(toy, 1.5, current_fraction=0.25)
        assert split.current.n_papers == 2
        with pytest.raises(EvaluationError):
            split_by_ratio(toy, 1.5, current_fraction=1.5)

    def test_tiny_network_rejected(self, two_dangling):
        with pytest.raises(EvaluationError):
            split_by_ratio(two_dangling, 1.5)


class TestGroundTruth:
    def test_hand_computed_sti(self, toy):
        """Current = {A,B,C,D}; ratio 1.5 adds E (2000) and F (2001).
        STI counts citations from {E, F} into the current set:
        E -> C, D; F -> D, A (E not in current)."""
        split = split_by_ratio(toy, 1.5)
        sti = {
            split.current.id_of(i): split.sti[i]
            for i in range(split.current.n_papers)
        }
        assert sti == {"A": 1.0, "B": 0.0, "C": 1.0, "D": 2.0}

    def test_sti_excludes_current_internal_citations(self, toy):
        """Citations among current papers are part of C(tN), not STI."""
        split = split_by_ratio(toy, 1.5)
        # B was cited by C (current-internal): must not count.
        assert split.sti[split.current.index_of("B")] == 0.0

    def test_sti_monotone_in_ratio(self, hepth_tiny):
        """A larger future window can only add citations."""
        lo = split_by_ratio(hepth_tiny, 1.2)
        hi = split_by_ratio(hepth_tiny, 2.0)
        assert np.all(hi.sti >= lo.sti)
        assert hi.sti.sum() > lo.sti.sum()

    def test_ground_truth_ranking_sorted_by_sti(self, hepth_split):
        ranking = hepth_split.ground_truth_ranking
        values = hepth_split.sti[ranking]
        assert np.all(np.diff(values) <= 0)

    def test_top_by_sti(self, hepth_split):
        top = hepth_split.top_by_sti(10)
        assert top.shape == (10,)
        assert np.array_equal(top, hepth_split.ground_truth_ranking[:10])


class TestHorizon:
    def test_horizon_positive_and_monotone(self, hepth_tiny):
        horizons = [
            split_by_ratio(hepth_tiny, r).horizon_years
            for r in DEFAULT_TEST_RATIOS
        ]
        assert all(h > 0 for h in horizons)
        assert horizons == sorted(horizons)

    def test_t_current_is_newest_current_paper(self, toy):
        split = split_by_ratio(toy, 1.5)
        assert split.t_current == 1999.0  # D
        assert split.t_future == 2001.0  # F
        assert split.horizon_years == pytest.approx(2.0)


class TestMethodVisibility:
    def test_current_network_has_no_future_information(self, toy):
        """The current network must contain only citations among current
        papers — a method cannot peek at the future."""
        split = split_by_ratio(toy, 2.0)
        current_times = split.current.publication_times
        made_at = split.current.citation_times()
        assert np.all(made_at <= split.t_current)
        assert np.all(current_times <= split.t_current)

    def test_metadata_carried_into_current(self, dblp_tiny):
        split = split_by_ratio(dblp_tiny, 1.6)
        assert split.current.has_authors
        assert split.current.has_venues
