"""Tests for repro.obs.profile — the sampling wall/CPU profiler.

Everything deterministic drives :meth:`SamplingProfiler.sample_once`
directly (no sampler thread, no timing); the one thread test that does
start the background sampler only asserts coarse facts (samples were
taken, stop stops).  Rendering tests run every document through the
strict validators in ``obsschema``.
"""

from __future__ import annotations

import threading
import time

import pytest

from obsschema import validate_collapsed, validate_profile
from repro.errors import ConfigurationError
from repro.obs.logging import bind_request_id
from repro.obs.profile import (
    IDLE_PHASE,
    MemoryProfiler,
    SamplingProfiler,
    collapsed_stacks,
    merge_profile_states,
    profile_phase,
    render_profile,
    speedscope_document,
)


class TestSampling:
    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ConfigurationError, match="hz"):
            SamplingProfiler(hz=0)

    def test_unmarked_thread_samples_as_idle(self):
        profiler = SamplingProfiler()
        profiler.sample_once()
        state = profiler.state_dict()
        assert state["samples_total"] >= 1
        assert {s["phase"] for s in state["stacks"]} == {IDLE_PHASE}
        # No request was bound, so nothing is attributed.
        assert state["samples_by_request"] == {}

    def test_phase_and_request_attribution(self):
        profiler = SamplingProfiler()
        with bind_request_id("req-42"):
            with profile_phase("top"):
                profiler.sample_once()
                profiler.sample_once()
        state = profiler.state_dict()
        top = [s for s in state["stacks"] if s["phase"] == "top"]
        assert sum(s["count"] for s in top) == 2
        assert state["samples_by_request"] == {"req-42": 2}
        # The sampled stack is this test, root-first: the test
        # function must appear as a frame, below (after) the runner.
        frames = top[0]["frames"]
        assert any(
            "test_phase_and_request_attribution" in f for f in frames
        )

    def test_nested_phase_restores_the_outer_attribution(self):
        profiler = SamplingProfiler()
        with profile_phase("outer"):
            with profile_phase("inner"):
                profiler.sample_once()
            profiler.sample_once()
        profiler.sample_once()  # outside both: idle again
        phases = {
            s["phase"]: s["count"]
            for s in profiler.state_dict()["stacks"]
        }
        assert phases["inner"] == 1
        assert phases["outer"] == 1
        assert phases[IDLE_PHASE] == 1

    def test_interleaved_blocks_may_exit_in_any_order(self):
        # On an asyncio event loop two requests' phase blocks open and
        # close interleaved on one thread: enter A, enter B, exit A,
        # exit B.  Each exit must remove its *own* attribution — a
        # saved-previous restore would resurrect A after B's exit and
        # strand it on the thread forever.
        profiler = SamplingProfiler()
        block_a = profile_phase("top")
        block_b = profile_phase("paper")
        block_a.__enter__()
        block_b.__enter__()
        profiler.sample_once()  # most recently entered block wins
        block_a.__exit__(None, None, None)
        profiler.sample_once()  # B's attribution survives A's exit
        block_b.__exit__(None, None, None)
        profiler.sample_once()  # everything closed: idle again
        phases: dict[str, int] = {}
        for stack in profiler.state_dict()["stacks"]:
            phases[stack["phase"]] = (
                phases.get(stack["phase"], 0) + stack["count"]
            )
        assert phases == {"paper": 2, IDLE_PHASE: 1}

    def test_asyncio_interleaving_cannot_strand_a_stale_phase(self):
        import asyncio

        from repro.obs.profile import _THREAD_PHASE

        async def one_request(label: str) -> None:
            with profile_phase(label):
                await asyncio.sleep(0)  # other requests run here
                await asyncio.sleep(0)

        async def main() -> None:
            await asyncio.gather(
                *(one_request(f"phase-{i}") for i in range(5))
            )

        asyncio.run(main())
        assert threading.get_ident() not in _THREAD_PHASE
        profiler = SamplingProfiler()
        profiler.sample_once()
        assert {
            s["phase"] for s in profiler.state_dict()["stacks"]
        } == {IDLE_PHASE}

    def test_distinct_stack_cap_drops_never_grows(self, monkeypatch):
        monkeypatch.setattr("repro.obs.profile._MAX_STACKS", 1)
        profiler = SamplingProfiler()
        # Two call sites -> two distinct stacks (the line number of
        # this frame differs); the table holds one, the other drops.
        profiler.sample_once()
        profiler.sample_once()
        state = profiler.state_dict()
        assert len(state["stacks"]) == 1
        assert state["dropped_stacks"] == 1
        assert state["samples_total"] == 2
        # The identity the endpoint schema enforces survives drops.
        validate_profile(render_profile(state))

    def test_request_id_cap_bounds_attribution(self, monkeypatch):
        monkeypatch.setattr("repro.obs.profile._MAX_REQUEST_IDS", 2)
        profiler = SamplingProfiler()
        for i in range(5):
            with bind_request_id(f"req-{i}"):
                with profile_phase("top"):
                    profiler.sample_once()
        by_request = profiler.state_dict()["samples_by_request"]
        assert len(by_request) == 2

    def test_reset_drops_samples_but_keeps_config(self):
        profiler = SamplingProfiler(hz=123.0)
        with profile_phase("top"):
            profiler.sample_once()
        profiler.reset()
        state = profiler.state_dict()
        assert state["samples_total"] == 0
        assert state["stacks"] == []
        assert state["samples_by_request"] == {}
        assert state["hz"] == 123.0

    def test_background_thread_samples_and_stops(self):
        profiler = SamplingProfiler(hz=500.0)
        profiler.start()
        try:
            assert profiler.running
            deadline = time.monotonic() + 5.0
            with profile_phase("busy"):
                while (
                    profiler.samples_total == 0
                    and time.monotonic() < deadline
                ):
                    time.sleep(0.002)
        finally:
            profiler.stop()
        assert not profiler.running
        state = profiler.state_dict()
        assert state["samples_total"] > 0
        # The sampler excludes its own thread: no repro-profiler
        # frames charge the profile.
        for stack in state["stacks"]:
            assert not any("_run (profile" in f for f in stack["frames"])
        validate_profile(render_profile(state))


class TestMergeAndRender:
    @staticmethod
    def _state(stacks, *, hz=67.0, started=100.0, by_request=None):
        return {
            "running": False,
            "hz": hz,
            "samples_total": sum(s["count"] for s in stacks),
            "dropped_stacks": 0,
            "started_unix": started,
            "stacks": stacks,
            "samples_by_request": dict(by_request or {}),
        }

    def test_merge_sums_counts_on_phase_and_frames(self):
        shared = {"phase": "top", "frames": ["a (m.py:1)"], "count": 3}
        only_b = {"phase": "paper", "frames": ["b (m.py:2)"], "count": 2}
        merged = merge_profile_states(
            [
                self._state([shared], hz=67.0, started=50.0,
                            by_request={"r1": 3}),
                self._state(
                    [dict(shared, count=4), only_b],
                    hz=199.0,
                    started=20.0,
                    by_request={"r1": 1, "r2": 2},
                ),
            ]
        )
        counts = {
            (s["phase"], tuple(s["frames"])): s["count"]
            for s in merged["stacks"]
        }
        assert counts == {
            ("top", ("a (m.py:1)",)): 7,
            ("paper", ("b (m.py:2)",)): 2,
        }
        assert merged["samples_total"] == 9
        assert merged["hz"] == 199.0  # fastest worker wins the display
        assert merged["started_unix"] == 20.0  # earliest start
        assert merged["samples_by_request"] == {"r1": 4, "r2": 2}

    def test_merge_of_live_profilers_equals_direct_totals(self):
        a, b = SamplingProfiler(), SamplingProfiler()
        with profile_phase("top"):
            a.sample_once()
            b.sample_once()
            b.sample_once()
        merged = merge_profile_states([a.state_dict(), b.state_dict()])
        assert merged["samples_total"] == (
            a.samples_total + b.samples_total
        )
        validate_profile(render_profile(merged))

    def test_render_orders_and_truncates(self):
        stacks = [
            {"phase": "top", "frames": [f"f{i} (m.py:{i})"],
             "count": i + 1}
            for i in range(5)
        ]
        document = render_profile(self._state(stacks), top=3)
        validate_profile(document)
        assert [s["count"] for s in document["stacks"]] == [5, 4, 3]
        assert document["truncated"] is True
        assert document["by_phase"] == {"top": 15}

    def test_render_caps_hot_requests_at_ten(self):
        by_request = {f"req-{i:02d}": i + 1 for i in range(15)}
        document = render_profile(
            self._state(
                [{"phase": "top", "frames": [], "count": 120}],
                by_request=by_request,
            )
        )
        validate_profile(document)
        assert len(document["hot_requests"]) == 10
        assert document["hot_requests"][0] == {
            "request_id": "req-14", "samples": 15,
        }

    def test_collapsed_is_folded_text_with_phase_root(self):
        text = collapsed_stacks(
            self._state(
                [
                    {"phase": "top", "frames": ["a (m.py:1)",
                                                "b;c (m.py:2)"],
                     "count": 3},
                    {"phase": "idle", "frames": [], "count": 7},
                ]
            )
        )
        assert validate_collapsed(text) == 2
        assert text.endswith("\n")
        lines = text.splitlines()
        # Sorted by (phase, frames); semicolons inside a frame are
        # escaped so the fold separator stays unambiguous.
        assert lines[0] == "idle 7"
        assert lines[1] == "top;a (m.py:1);b,c (m.py:2) 3"

    def test_collapsed_of_empty_state_is_empty(self):
        assert collapsed_stacks(self._state([])) == ""

    def test_speedscope_document_interns_frames(self):
        document = speedscope_document(
            self._state(
                [
                    {"phase": "top", "frames": ["a (m.py:1)"], "count": 2},
                    {"phase": "top", "frames": ["a (m.py:1)",
                                                "b (m.py:2)"],
                     "count": 1},
                ]
            ),
            name="unit",
        )
        assert document["$schema"].startswith(
            "https://www.speedscope.app"
        )
        names = [f["name"] for f in document["shared"]["frames"]]
        assert names == ["top", "a (m.py:1)", "b (m.py:2)"]
        profile = document["profiles"][0]
        assert profile["type"] == "sampled"
        assert sum(profile["weights"]) == 3 == profile["endValue"]
        for sample in profile["samples"]:
            assert all(0 <= i < len(names) for i in sample)


class TestMemoryProfiler:
    def test_snapshot_requires_tracing(self):
        assert MemoryProfiler().snapshot() == {
            "tracing": False, "top": [],
        }

    def test_snapshot_reports_sites_and_diffs(self):
        profiler = MemoryProfiler()
        profiler.start()
        try:
            hoard = [bytearray(4096) for _ in range(64)]
            snapshot = profiler.snapshot(top=5)
        finally:
            profiler.stop()
            del hoard
        assert snapshot["tracing"] is True
        assert snapshot["traced_kb"] > 0
        assert snapshot["peak_kb"] >= snapshot["traced_kb"] * 0.5
        assert 0 < len(snapshot["top"]) <= 5
        site = snapshot["top"][0]
        assert set(site) == {"site", "size_kb", "size_diff_kb", "count"}
        # Our hoard dominates the diff against the start() baseline.
        assert any(
            "test_obs_profile" in s["site"] for s in snapshot["top"]
        )
        assert not profiler.snapshot()["tracing"]

    def test_profiler_carries_memory_only_when_asked(self):
        assert SamplingProfiler().memory is None
        profiler = SamplingProfiler(trace_memory=True)
        assert isinstance(profiler.memory, MemoryProfiler)
        profiler.start()
        try:
            assert profiler.memory.snapshot()["tracing"] is True
        finally:
            profiler.stop()
        assert profiler.memory.snapshot()["tracing"] is False


class TestAttributionAcrossThreads:
    def test_each_thread_keeps_its_own_phase(self):
        profiler = SamplingProfiler()
        ready = threading.Barrier(3)
        release = threading.Event()

        def worker(phase):
            with profile_phase(phase):
                ready.wait()
                release.wait(5.0)

        threads = [
            threading.Thread(target=worker, args=(p,))
            for p in ("alpha", "beta")
        ]
        for thread in threads:
            thread.start()
        try:
            ready.wait()  # both workers are inside their phases
            profiler.sample_once(skip_thread=threading.get_ident())
        finally:
            release.set()
            for thread in threads:
                thread.join()
        phases = {
            s["phase"] for s in profiler.state_dict()["stacks"]
        }
        assert {"alpha", "beta"} <= phases
