"""Unit tests for the synthetic growth model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.synth.authors import AuthorConfig
from repro.synth.models import GrowthConfig, generate_network


def small_config(**overrides):
    defaults = dict(
        n_papers=400,
        first_year=1995.0,
        last_year=2005.0,
        mean_references=6.0,
        aging_rate=-0.6,
    )
    defaults.update(overrides)
    return GrowthConfig(**defaults)


class TestGrowthConfigValidation:
    def test_minimum_papers(self):
        with pytest.raises(ConfigurationError):
            small_config(n_papers=1)

    def test_year_order(self):
        with pytest.raises(ConfigurationError):
            small_config(first_year=2010.0, last_year=2000.0)

    def test_aging_must_be_negative(self):
        with pytest.raises(ConfigurationError):
            small_config(aging_rate=0.1)

    def test_maturation_non_negative(self):
        with pytest.raises(ConfigurationError):
            small_config(maturation_exponent=-1.0)

    def test_copy_probability_range(self):
        with pytest.raises(ConfigurationError):
            small_config(copy_probability=1.0)

    def test_author_boost_requires_authors(self):
        with pytest.raises(ConfigurationError):
            small_config(authors=None, author_fitness_boost=0.5)

    def test_window_positive(self):
        with pytest.raises(ConfigurationError):
            small_config(attention_window=0.0)


class TestGeneratedStructure:
    @pytest.fixture(scope="class")
    def network(self):
        return generate_network(small_config(), seed=5)

    def test_paper_count_exact(self, network):
        assert network.n_papers == 400

    def test_chronological_ids(self, network):
        assert np.all(np.diff(network.publication_times) >= 0)
        assert network.paper_ids[0] == "P0000001"

    def test_time_consistency(self, network):
        """Every citation points strictly backwards in time."""
        network.validate(require_time_order=True)
        citing_times = network.publication_times[network.citing]
        cited_times = network.publication_times[network.cited]
        assert np.all(citing_times > cited_times)

    def test_years_within_span(self, network):
        assert network.publication_times.min() >= 1995.0
        assert network.publication_times.max() <= 2005.0

    def test_reference_volume_near_mean(self, network):
        # Papers late in the corpus have full pools; the global mean is
        # somewhat below mean_references due to early small pools.
        mean_refs = network.out_degree.mean()
        assert 2.0 < mean_refs <= 7.5

    def test_metadata_generated(self, network):
        assert network.has_authors
        assert network.has_venues
        assert network.n_authors > 50

    def test_heavy_tailed_citations(self, network):
        """Fitness + preferential attachment: the max citation count far
        exceeds the mean."""
        in_degree = network.in_degree
        assert in_degree.max() > 8 * max(in_degree.mean(), 1e-9)


class TestDeterminism:
    def test_same_seed_same_network(self):
        a = generate_network(small_config(), seed=11)
        b = generate_network(small_config(), seed=11)
        assert np.array_equal(a.citing, b.citing)
        assert np.array_equal(a.cited, b.cited)
        assert a.paper_authors == b.paper_authors

    def test_different_seeds_differ(self):
        a = generate_network(small_config(), seed=11)
        b = generate_network(small_config(), seed=12)
        assert a.n_citations != b.n_citations or not np.array_equal(
            a.citing, b.citing
        )


class TestMechanisms:
    def test_aging_controls_citation_lag(self):
        """Faster kernel aging concentrates citation ages earlier."""
        from repro.graph.statistics import citation_age_distribution

        fast = generate_network(small_config(aging_rate=-1.5), seed=3)
        slow = generate_network(small_config(aging_rate=-0.2), seed=3)
        fast_dist = citation_age_distribution(fast, max_age=8)
        slow_dist = citation_age_distribution(slow, max_age=8)
        # Mean citation age is smaller under fast aging.
        ages = np.arange(9)
        fast_mean = (fast_dist * ages).sum() / fast_dist.sum()
        slow_mean = (slow_dist * ages).sum() / slow_dist.sum()
        assert fast_mean < slow_mean

    def test_no_authors_config(self):
        network = generate_network(
            small_config(authors=None, author_fitness_boost=0.0), seed=3
        )
        assert not network.has_authors

    def test_no_venues_config(self):
        network = generate_network(small_config(venues=None), seed=3)
        assert not network.has_venues

    def test_attention_persistence(self):
        """The core premise of the paper: recent citation counts predict
        near-future citation counts on the generated corpora."""
        from repro.eval.split import split_by_ratio
        from repro.eval.metrics import spearman_rho
        from repro.core.attention import attention_counts

        network = generate_network(small_config(n_papers=1500), seed=9)
        split = split_by_ratio(network, 1.4)
        recent = attention_counts(split.current, 2.0)
        rho = spearman_rho(recent, split.sti)
        assert rho > 0.3
