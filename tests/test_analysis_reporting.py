"""Unit tests for the ASCII reporting helpers."""

import numpy as np
import pytest

from repro.analysis.reporting import (
    format_heatmap,
    format_kv_block,
    format_series,
    format_table,
)


class TestFormatTable:
    def test_alignment(self):
        text = format_table(["name", "v"], [["alpha", 1], ["b", 22.5]])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert len(lines) == 4
        # All rows padded to the same width per column.
        assert lines[1].startswith("-----")

    def test_title(self):
        text = format_table(["a"], [[1]], title="My table")
        assert text.splitlines()[0] == "My table"

    def test_float_trimming(self):
        text = format_table(["x"], [[0.30000000000004]])
        assert "0.3" in text and "0.30000000000004" not in text


class TestFormatSeries:
    def test_rows_per_method(self):
        text = format_series(
            "ratio",
            [1.2, 1.6],
            {"AR": [0.5, 0.6], "RAM": [0.4, 0.45]},
        )
        lines = text.splitlines()
        assert any(line.startswith("AR") for line in lines)
        assert any(line.startswith("RAM") for line in lines)
        assert "0.6000" in text

    def test_precision(self):
        text = format_series("k", [5], {"AR": [0.123456]}, precision=2)
        assert "0.12" in text and "0.1235" not in text


class TestFormatHeatmap:
    def test_nan_rendered_as_dot(self):
        grid = np.array([[0.5, np.nan], [0.25, 0.75]])
        text = format_heatmap(grid, [0.0, 0.1], [0.0, 0.1])
        assert "." in text
        assert "0.500" in text

    def test_beta_rows_top_down(self):
        grid = np.array([[1.0, 1.0], [2.0, 2.0]])
        text = format_heatmap(grid, [0.0, 0.1], [0.0, 0.1])
        lines = text.splitlines()
        # The row labelled 0.1 (grid row 1, value 2.0) is printed first.
        assert "2.000" in lines[1]

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            format_heatmap(np.ones((2, 2)), [0.0], [0.0, 0.1])

    def test_title_and_axes(self):
        text = format_heatmap(
            np.ones((1, 1)),
            [0.0],
            [0.0],
            title="T",
            row_axis="beta",
            col_axis="alpha",
        )
        assert text.splitlines()[0] == "T"
        assert "beta\\alpha" in text


class TestFormatKvBlock:
    def test_alignment(self):
        text = format_kv_block({"a": 1, "long-key": 2.5})
        lines = text.splitlines()
        assert lines[0].index(":") == lines[1].index(":")

    def test_empty(self):
        assert format_kv_block({}) == ""
