"""Unit tests for the classic centrality variants (Katz, HITS)."""

import numpy as np
import pytest

from repro.baselines.centrality import HITSAuthority, KatzCentrality
from repro.baselines.citation_count import CitationCount
from repro.errors import ConfigurationError


class TestKatz:
    def test_chain_closed_form(self, chain):
        """On the 4-chain, Katz(A) = 1 + alpha + alpha^2 (chains of
        length 1, 2, 3 into A)."""
        alpha = 0.5
        scores = KatzCentrality(alpha=alpha).scores(chain)
        a = chain.index_of("A")
        assert scores[a] == pytest.approx(1 + alpha + alpha**2)

    def test_alpha_zero_limit_is_citation_count(self, hepth_tiny):
        katz = KatzCentrality(alpha=1e-9).scores(hepth_tiny)
        cc = CitationCount().scores(hepth_tiny)
        assert np.allclose(katz, cc, atol=1e-5)

    def test_matches_ecm_with_gamma_one(self, hepth_tiny):
        """ECM with gamma = 1 (no time weights) is exactly Katz."""
        from repro.baselines.ecm import EffectiveContagion

        katz = KatzCentrality(alpha=0.2).scores(hepth_tiny)
        ecm = EffectiveContagion(alpha=0.2, gamma=1.0).scores(hepth_tiny)
        assert np.allclose(katz, ecm, atol=1e-9)

    def test_alpha_validated(self):
        with pytest.raises(ConfigurationError):
            KatzCentrality(alpha=0.0)
        with pytest.raises(ConfigurationError):
            KatzCentrality(alpha=1.0)

    def test_terminates_on_dag(self, chain):
        method = KatzCentrality(alpha=0.9)
        method.scores(chain)
        assert method.last_convergence.converged


class TestHITS:
    def test_probability_vector(self, toy):
        scores = HITSAuthority().scores(toy)
        assert scores.min() >= 0
        assert scores.sum() == pytest.approx(1.0)

    def test_authority_needs_incoming_citations(self, star):
        """In the star, only HUB has authority; the spokes are hubs."""
        scores = HITSAuthority().scores(star)
        hub = star.index_of("HUB")
        assert scores[hub] == pytest.approx(1.0)

    def test_matches_networkx(self, hepth_tiny):
        import networkx as nx

        ours = HITSAuthority(tol=1e-13).scores(hepth_tiny)
        graph = hepth_tiny.to_networkx()
        _, authorities = nx.hits(graph, max_iter=1000, tol=1e-13)
        theirs = np.array(
            [authorities[i] for i in range(hepth_tiny.n_papers)]
        )
        theirs = theirs / theirs.sum()
        # Rankings agree on the top papers (norms differ by convention).
        ours_top = np.argsort(-ours)[:20]
        theirs_top = np.argsort(-theirs)[:20]
        assert len(set(ours_top) & set(theirs_top)) >= 15

    def test_age_bias_demonstrated(self, hepth_split):
        """The Section-5 point of including these baselines: classic
        centrality is worse at STI ranking than even the simplest
        time-aware method."""
        from repro.baselines.ram import RetainedAdjacency
        from repro.eval.metrics import spearman_rho

        network, sti = hepth_split.current, hepth_split.sti
        katz = spearman_rho(
            KatzCentrality(alpha=0.1).scores(network), sti
        )
        ram = spearman_rho(
            RetainedAdjacency(gamma=0.3).scores(network), sti
        )
        assert ram > katz


class TestRegistryIntegration:
    def test_constructible_from_registry(self, toy):
        from repro.baselines import make_method

        for label in ("KATZ", "HITS"):
            scores = make_method(label).scores(toy)
            assert scores.shape == (toy.n_papers,)
