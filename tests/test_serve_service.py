"""Behaviour tests for repro.serve.service.RankingService."""

import numpy as np
import pytest

from repro.baselines import make_method
from repro.errors import ConfigurationError, GraphError
from repro.ranking import ranking_from_scores
from repro.serve import NetworkDelta, RankingService, ScoreIndex


@pytest.fixture
def service(hepth_tiny):
    index = ScoreIndex(hepth_tiny)
    index.add_method("PR")
    index.add_method("CC")
    return RankingService(index, cache_size=8)


class TestTopK:
    def test_matches_batch_ranking(self, service, hepth_tiny):
        """The acceptance criterion: query == batch rank on an
        unchanged snapshot."""
        result = service.top_k("PR", k=10)
        batch = make_method("PR").rank(hepth_tiny)[:10]
        expected = [hepth_tiny.id_of(int(i)) for i in batch]
        assert list(result.paper_ids) == expected
        assert result.total == hepth_tiny.n_papers
        assert [row.rank for row in result.entries] == list(range(1, 11))

    def test_scores_and_years_reported(self, service, hepth_tiny):
        row = service.top_k("CC", k=1).entries[0]
        index = hepth_tiny.index_of(row.paper_id)
        assert row.score == float(hepth_tiny.in_degree[index])
        assert row.year == float(hepth_tiny.publication_times[index])

    def test_pagination_is_seamless(self, service):
        full = service.top_k("PR", k=10)
        page1 = service.top_k("PR", k=5, offset=0)
        page2 = service.top_k("PR", k=5, offset=5)
        assert page1.paper_ids + page2.paper_ids == full.paper_ids
        assert page2.entries[0].rank == 6

    def test_offset_beyond_population(self, service, hepth_tiny):
        result = service.top_k("PR", k=5, offset=hepth_tiny.n_papers)
        assert result.entries == ()
        assert result.total == hepth_tiny.n_papers

    def test_year_filter(self, service, hepth_tiny):
        lo, hi = 1996.0, 1999.0
        result = service.top_k("CC", k=20, year_range=(lo, hi))
        times = hepth_tiny.publication_times
        expected_total = int(np.sum((times >= lo) & (times <= hi)))
        assert result.total == expected_total
        for row in result.entries:
            assert lo <= row.year <= hi
        # Filtered ranking preserves the method's score order.
        scores = [row.score for row in result.entries]
        assert scores == sorted(scores, reverse=True)

    def test_validation(self, service):
        with pytest.raises(ConfigurationError, match="k must be"):
            service.top_k("PR", k=0)
        with pytest.raises(ConfigurationError, match="offset"):
            service.top_k("PR", offset=-1)
        with pytest.raises(ConfigurationError, match="year range"):
            service.top_k("PR", year_range=(2000.0, 1990.0))
        with pytest.raises(ConfigurationError, match="not in the index"):
            service.top_k("AR")


class TestCaching:
    def test_repeat_query_hits_cache(self, service):
        first = service.top_k("PR", k=5)
        second = service.top_k("PR", k=5)
        assert second is first  # the very same frozen result object
        stats = service.cache_stats()
        assert stats.hits == 1
        assert stats.misses == 1

    def test_distinct_queries_miss(self, service):
        service.top_k("PR", k=5)
        service.top_k("PR", k=6)
        service.top_k("PR", k=5, year_range=(1990.0, 2000.0))
        assert service.cache_stats().hits == 0

    def test_update_invalidates(self, service):
        before = service.top_k("CC", k=3)
        service.update(
            NetworkDelta(
                papers=(("NEW", 2004.0),),
                citations=(("NEW", before.paper_ids[0]),),
            )
        )
        after = service.top_k("CC", k=3)
        assert after is not before
        assert after.version == before.version + 1
        # The new citation is visible: the leader gained one point.
        assert after.entries[0].score == before.entries[0].score + 1

    def test_out_of_band_ingest_never_serves_stale(self, service):
        """Regression: an ingest that bypasses service.update (a stream
        replay driving DeltaUpdater directly, or any second writer on
        the same index) must never let the service hand back a cached
        pre-ingest page."""
        from repro.serve import DeltaUpdater

        before = service.top_k("CC", k=3)
        assert service.top_k("CC", k=3) is before  # primed the cache
        DeltaUpdater(service.index).apply(
            NetworkDelta(
                papers=(("NEW", 2004.0),),
                citations=(("NEW", before.paper_ids[0]),),
            )
        )
        after = service.top_k("CC", k=3)
        assert after is not before
        assert after.version == before.version + 1
        assert after.entries[0].score == before.entries[0].score + 1

    def test_out_of_band_version_change_clears_cache(self, service):
        """Regression: version-keyed entries from before an out-of-band
        refresh are dead weight; detecting the new version must drop
        them instead of letting them squat in the LRU (capacity 8 here
        — a replay of many micro-batches would otherwise evict every
        live page)."""
        for k in (2, 3, 4, 5):
            service.top_k("PR", k=k)
        assert service.cache_stats().size == 4
        service.index.refresh()  # e.g. a stream finalize
        service.top_k("PR", k=2)
        stats = service.cache_stats()
        # Only the fresh entry survives; the four stale ones are gone.
        assert stats.size == 1


class TestCompare:
    def test_results_and_overlap(self, service):
        comparison = service.compare(["PR", "CC"], k=10)
        assert set(comparison.results) == {"PR", "CC"}
        shared = set(comparison.results["PR"].paper_ids) & set(
            comparison.results["CC"].paper_ids
        )
        assert comparison.overlap[("PR", "CC")] == len(shared)

    def test_duplicate_labels_rejected(self, service):
        with pytest.raises(ConfigurationError, match="duplicate"):
            service.compare(["PR", "pr"])

    def test_offset_paginates_every_method(self, service):
        page2 = service.compare(["PR", "CC"], k=5, offset=5)
        for label in ("PR", "CC"):
            expected = service.top_k(label, k=5, offset=5)
            assert page2.results[label].paper_ids == expected.paper_ids
            assert page2.results[label].entries[0].rank == 6


class TestPaperLookup:
    def test_scores_and_ranks(self, service, hepth_tiny):
        top = service.top_k("PR", k=1).entries[0]
        details = service.paper(top.paper_id)
        assert details.ranks["PR"] == 1
        assert details.scores["PR"] == top.score
        assert set(details.scores) == {"PR", "CC"}
        order = ranking_from_scores(service.index.scores("CC"))
        position = int(
            np.nonzero(order == hepth_tiny.index_of(top.paper_id))[0][0]
        )
        assert details.ranks["CC"] == position + 1

    def test_unknown_paper(self, service):
        with pytest.raises(GraphError, match="unknown paper"):
            service.paper("nope")


class TestUpdateFlow:
    def test_update_report_and_version(self, service):
        report = service.update(
            NetworkDelta(papers=(("NEW", 2004.0),), citations=())
        )
        assert report.version == 1
        assert service.version == 1
        assert report.n_new_papers == 1
        assert report.entries["PR"].warm_started

    def test_queries_reflect_new_papers(self, service, hepth_tiny):
        service.update(
            NetworkDelta(papers=(("NEW", 2004.0),), citations=())
        )
        result = service.top_k("CC", k=5)
        assert result.total == hepth_tiny.n_papers + 1

    def test_external_refresh_is_served_without_memo_leak(self, service):
        """Version bumps outside service.update (ScoreIndex.refresh)
        must refresh the ranking memo, never accumulate entries."""
        before = service.top_k("PR", k=3)
        for _ in range(3):
            service.index.refresh()
        after = service.top_k("PR", k=3)
        assert after.version == before.version + 3
        assert after.paper_ids == before.paper_ids
        # One memoised permutation per method, regardless of versions.
        assert set(service._rankings) <= {"PR", "CC"}
        assert service._rankings["PR"][0] == after.version
