"""Unit tests for the dataset loaders (hep-th, AMiner, CSV, edge list)."""

import textwrap

import pytest

from repro.errors import DataFormatError
from repro.io.aminer import load_aminer
from repro.io.edgelist import load_csv_dataset, load_edge_list
from repro.io.hepth import load_hepth, parse_hepth_date


class TestHepthDates:
    def test_parse_basic(self):
        assert parse_hepth_date("1997-07-01") == pytest.approx(1997.5)

    def test_parse_january_first(self):
        assert parse_hepth_date("2000-01-01") == pytest.approx(2000.0)

    def test_malformed_rejected(self):
        with pytest.raises(DataFormatError):
            parse_hepth_date("1997/07/01")
        with pytest.raises(DataFormatError):
            parse_hepth_date("1997-13-01")
        with pytest.raises(DataFormatError):
            parse_hepth_date("not-a-date-x")


class TestLoadHepth:
    @pytest.fixture
    def files(self, tmp_path):
        citations = tmp_path / "cit-HepTh.txt"
        citations.write_text(
            textwrap.dedent(
                """\
                # FromNodeId ToNodeId
                9901002 9901001
                9901003 9901001
                9901003 9901002
                9901003 7777777
                """
            )
        )
        dates = tmp_path / "cit-HepTh-dates.txt"
        dates.write_text(
            textwrap.dedent(
                """\
                # paper date
                9901001 1999-01-15
                9901002 1999-06-01
                119901003 2000-01-01
                """
            )
        )
        return str(citations), str(dates)

    def test_load(self, files):
        network = load_hepth(*files)
        assert network.n_papers == 3
        # The 11-prefixed id is normalised; reference to 7777777 dropped.
        assert network.n_citations == 3
        assert network.in_degree[network.index_of("9901001")] == 2

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataFormatError, match="not found"):
            load_hepth(str(tmp_path / "none"), str(tmp_path / "none2"))

    def test_malformed_citation_line(self, tmp_path, files):
        citations, dates = files
        bad = tmp_path / "bad.txt"
        bad.write_text("9901002 9901001 extra\n")
        with pytest.raises(DataFormatError, match="expected"):
            load_hepth(str(bad), dates)


class TestLoadAminer:
    @pytest.fixture
    def v_file(self, tmp_path):
        path = tmp_path / "dblp.txt"
        path.write_text(
            textwrap.dedent(
                """\
                #*Foundations of Databases
                #@Serge Abiteboul, Richard Hull
                #t1995
                #cAddison-Wesley
                #index100

                #*A Relational Model
                #@E. F. Codd
                #t1970
                #cCACM
                #index200

                #*Later Survey
                #@Serge Abiteboul
                #t2001
                #cVLDB
                #index300
                #%100
                #%200
                #%999
                """
            )
        )
        return str(path)

    def test_load(self, v_file):
        network = load_aminer(v_file)
        assert network.n_papers == 3
        assert network.n_citations == 2  # reference to 999 dropped
        survey = network.index_of("300")
        assert network.publication_times[survey] == 2001.0
        assert network.has_authors and network.has_venues
        # Abiteboul authored two papers.
        assert network.n_authors == 3

    def test_paper_without_year_dropped(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("#*No year\n#index1\n\n#*Ok\n#t2000\n#index2\n")
        network = load_aminer(str(path))
        assert network.n_papers == 1

    def test_bad_year_raises(self, tmp_path):
        path = tmp_path / "x.txt"
        path.write_text("#*T\n#tnineteen\n#index1\n")
        with pytest.raises(DataFormatError, match="non-integer year"):
            load_aminer(str(path))

    def test_missing_file(self):
        with pytest.raises(DataFormatError):
            load_aminer("/does/not/exist.txt")


class TestLoadEdgeList:
    def test_whitespace_format(self, tmp_path):
        edges = tmp_path / "edges.txt"
        edges.write_text("# comment\nb a\nc a\nc b\n")
        times = tmp_path / "times.txt"
        times.write_text("a 2000\nb 2001.5\nc 2003\n")
        network = load_edge_list(str(edges), str(times))
        assert network.n_papers == 3
        assert network.n_citations == 3
        assert network.publication_times[network.index_of("b")] == 2001.5

    def test_csv_delimiter(self, tmp_path):
        edges = tmp_path / "edges.csv"
        edges.write_text("b,a\n")
        times = tmp_path / "times.csv"
        times.write_text("a,2000\nb,2001\n")
        network = load_edge_list(str(edges), str(times), delimiter=",")
        assert network.n_citations == 1

    def test_duplicate_time_row_rejected(self, tmp_path):
        edges = tmp_path / "e.txt"
        edges.write_text("")
        times = tmp_path / "t.txt"
        times.write_text("a 2000\na 2001\n")
        with pytest.raises(DataFormatError, match="duplicate"):
            load_edge_list(str(edges), str(times))

    def test_non_numeric_time_rejected(self, tmp_path):
        edges = tmp_path / "e.txt"
        edges.write_text("")
        times = tmp_path / "t.txt"
        times.write_text("a year2000\n")
        with pytest.raises(DataFormatError, match="non-numeric"):
            load_edge_list(str(edges), str(times))


class TestLoadCsvDataset:
    @pytest.fixture
    def files(self, tmp_path):
        metadata = tmp_path / "papers.csv"
        metadata.write_text(
            "id,year,authors,venue\n"
            "p1,1990,Alice;Bob,PRL\n"
            "p2,1995,Alice,PRB\n"
            "p3,2000,Carol,\n"
        )
        citations = tmp_path / "citations.csv"
        citations.write_text("citing,cited\np2,p1\np3,p1\np3,p2\n")
        return str(metadata), str(citations)

    def test_load(self, files):
        network = load_csv_dataset(*files)
        assert network.n_papers == 3
        assert network.n_citations == 3
        assert network.n_authors == 3
        # p3 has empty venue -> -1.
        assert network.paper_venues[network.index_of("p3")] == -1

    def test_missing_required_column(self, tmp_path, files):
        _, citations = files
        bad = tmp_path / "bad.csv"
        bad.write_text("id,date\np1,1990\n")
        with pytest.raises(DataFormatError, match="missing required column"):
            load_csv_dataset(str(bad), citations)

    def test_bad_year(self, tmp_path, files):
        _, citations = files
        bad = tmp_path / "bad.csv"
        bad.write_text("id,year\np1,ninety\n")
        with pytest.raises(DataFormatError, match="non-numeric year"):
            load_csv_dataset(str(bad), citations)

    def test_rows_without_id_or_year_skipped(self, tmp_path, files):
        _, citations = files
        sparse = tmp_path / "sparse.csv"
        sparse.write_text("id,year\np1,1990\n,\np2,\n")
        network = load_csv_dataset(str(sparse), citations)
        assert network.n_papers == 1
