"""Unit tests for repro.graph.citation_network."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.citation_network import CitationNetwork


def make(ids, times, citing, cited, **kwargs):
    return CitationNetwork(ids, times, citing, cited, **kwargs)


class TestConstruction:
    def test_basic_counts(self, toy):
        assert toy.n_papers == 8
        assert toy.n_citations == 13
        assert len(toy) == 8

    def test_paper_ids_preserved(self, toy):
        assert toy.paper_ids == ("A", "B", "C", "D", "E", "F", "G", "H")

    def test_index_round_trip(self, toy):
        for i, pid in enumerate(toy.paper_ids):
            assert toy.index_of(pid) == i
            assert toy.id_of(i) == pid

    def test_contains(self, toy):
        assert "A" in toy
        assert "nope" not in toy

    def test_unknown_id_raises(self, toy):
        with pytest.raises(GraphError, match="unknown paper id"):
            toy.index_of("nope")

    def test_empty_network(self):
        network = make([], [], [], [])
        assert network.n_papers == 0
        assert network.n_citations == 0

    def test_duplicate_ids_rejected(self):
        with pytest.raises(GraphError, match="not unique"):
            make(["a", "a"], [2000.0, 2001.0], [], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(GraphError):
            make(["a", "b"], [2000.0], [], [])

    def test_self_citation_rejected(self):
        with pytest.raises(GraphError, match="self-citations"):
            make(["a", "b"], [2000.0, 2001.0], [1, 0], [1, 0])

    def test_edge_out_of_range_rejected(self):
        with pytest.raises(GraphError, match="out of range"):
            make(["a", "b"], [2000.0, 2001.0], [1], [5])

    def test_non_finite_time_rejected(self):
        with pytest.raises(GraphError, match="finite"):
            make(["a", "b"], [2000.0, float("nan")], [], [])

    def test_mismatched_edge_arrays_rejected(self):
        with pytest.raises(GraphError, match="differ in length"):
            make(["a", "b"], [2000.0, 2001.0], [1], [])

    def test_time_order_validation_optional(self):
        # b (2000) cites a (2005): allowed by default, rejected on demand.
        network = make(["a", "b"], [2005.0, 2000.0], [1], [0])
        with pytest.raises(GraphError, match="published later"):
            network.validate(require_time_order=True)

    def test_arrays_read_only(self, toy):
        with pytest.raises(ValueError):
            toy.publication_times[0] = 0.0
        with pytest.raises(ValueError):
            toy.citing[0] = 0


class TestCitationMatrix:
    def test_convention_cited_rows(self, chain):
        # C[i, j] = 1 iff j cites i; chain: B cites A etc.
        matrix = chain.citation_matrix.toarray()
        a, b, c, d = (chain.index_of(x) for x in "ABCD")
        assert matrix[a, b] == 1
        assert matrix[b, c] == 1
        assert matrix[c, d] == 1
        assert matrix.sum() == 3

    def test_duplicate_references_collapse(self):
        network = make(["a", "b"], [2000.0, 2001.0], [1, 1], [0, 0])
        assert network.citation_matrix.toarray()[0, 1] == 1.0
        assert network.in_degree[0] == 1

    def test_degrees(self, toy):
        a = toy.index_of("A")
        f = toy.index_of("F")
        # A is cited by B, C, F.
        assert toy.in_degree[a] == 3
        # F cites D, E, A.
        assert toy.out_degree[f] == 3

    def test_degree_totals_match_edges(self, toy):
        assert toy.in_degree.sum() == toy.n_citations
        assert toy.out_degree.sum() == toy.n_citations

    def test_dangling_mask(self, toy):
        # Only A cites nothing.
        expected = np.zeros(8, dtype=bool)
        expected[toy.index_of("A")] = True
        assert np.array_equal(toy.dangling_mask, expected)


class TestMetadata:
    def test_authors_present(self, toy):
        assert toy.has_authors
        assert toy.n_authors == 5  # ada, bob, cyd, eve, hal

    def test_author_matrix_shape_and_content(self, toy):
        matrix = toy.author_matrix
        assert matrix.shape == (5, 8)
        # ada wrote A, C, E.
        ada_row = matrix.toarray()[0]
        assert ada_row.sum() == 3

    def test_venues_present(self, toy):
        assert toy.has_venues
        assert toy.n_venues == 3

    def test_venue_matrix_columns(self, toy):
        matrix = toy.venue_matrix.toarray()
        # every paper has a venue -> every column sums to 1
        assert np.array_equal(matrix.sum(axis=0), np.ones(8))

    def test_no_author_metadata_raises(self, chain):
        assert not chain.has_authors
        with pytest.raises(GraphError, match="no author metadata"):
            chain.author_matrix

    def test_no_venue_metadata_raises(self, chain):
        with pytest.raises(GraphError, match="no venue metadata"):
            chain.venue_matrix

    def test_unknown_venue_column_empty(self):
        network = make(
            ["a", "b"],
            [2000.0, 2001.0],
            [1],
            [0],
            paper_venues=[0, -1],
        )
        matrix = network.venue_matrix.toarray()
        assert matrix[:, 0].sum() == 1
        assert matrix[:, 1].sum() == 0


class TestAgesAndTimes:
    def test_latest_time(self, toy):
        assert toy.latest_time == 2003.0

    def test_latest_time_empty_raises(self):
        with pytest.raises(GraphError):
            make([], [], [], []).latest_time

    def test_ages_default_now(self, toy):
        ages = toy.ages()
        assert ages[toy.index_of("A")] == pytest.approx(13.0)
        assert ages[toy.index_of("H")] == pytest.approx(0.0)

    def test_ages_clipped_at_zero(self, toy):
        ages = toy.ages(now=1995.0)
        assert np.all(ages >= 0.0)

    def test_citation_times_are_citing_pub_times(self, chain):
        times = chain.citation_times()
        assert sorted(times.tolist()) == [2001.0, 2002.0, 2003.0]


class TestSubnetwork:
    def test_induced_edges_only(self, toy):
        indices = [toy.index_of(x) for x in ("A", "B", "C")]
        sub = toy.subnetwork(indices)
        assert sub.n_papers == 3
        # Edges among A, B, C: B->A, C->A, C->B.
        assert sub.n_citations == 3

    def test_preserves_metadata(self, toy):
        sub = toy.subnetwork([0, 1, 2])
        assert sub.has_authors and sub.has_venues

    def test_duplicate_indices_rejected(self, toy):
        with pytest.raises(GraphError, match="duplicates"):
            toy.subnetwork([0, 0])

    def test_out_of_range_rejected(self, toy):
        with pytest.raises(GraphError, match="out of range"):
            toy.subnetwork([0, 99])

    def test_empty_subnetwork(self, toy):
        sub = toy.subnetwork([])
        assert sub.n_papers == 0

    def test_reindexing_consistency(self, toy):
        indices = [toy.index_of(x) for x in ("C", "E", "F")]
        sub = toy.subnetwork(sorted(indices))
        assert set(sub.paper_ids) == {"C", "E", "F"}
        for pid in sub.paper_ids:
            original = toy.publication_times[toy.index_of(pid)]
            assert sub.publication_times[sub.index_of(pid)] == original


class TestFromEdges:
    def test_basic(self):
        network = CitationNetwork.from_edges(
            [("b", "a"), ("c", "a")],
            {"a": 2000.0, "b": 2001.0, "c": 2002.0},
        )
        assert network.n_papers == 3
        assert network.in_degree[network.index_of("a")] == 2

    def test_isolated_paper_allowed(self):
        network = CitationNetwork.from_edges(
            [("b", "a")], {"a": 2000.0, "b": 2001.0, "z": 1999.0}
        )
        assert "z" in network
        assert network.in_degree[network.index_of("z")] == 0

    def test_missing_time_raises(self):
        with pytest.raises(GraphError, match="no publication time"):
            CitationNetwork.from_edges([("b", "a")], {"b": 2001.0})

    def test_networkx_export(self, chain):
        graph = chain.to_networkx()
        assert graph.number_of_nodes() == 4
        assert graph.number_of_edges() == 3
        assert graph.nodes[0]["paper_id"] == "A"
