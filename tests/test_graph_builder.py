"""Unit tests for repro.graph.builder.NetworkBuilder."""

import pytest

from repro.errors import GraphError
from repro.graph.builder import NetworkBuilder


class TestAddPaper:
    def test_basic_build(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0)
        builder.add_paper("b", 2001.0, references=["a"])
        network = builder.build()
        assert network.n_papers == 2
        assert network.n_citations == 1

    def test_duplicate_id_rejected(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0)
        with pytest.raises(GraphError, match="duplicate"):
            builder.add_paper("a", 2000.0)

    def test_len_and_contains(self):
        builder = NetworkBuilder()
        assert len(builder) == 0
        builder.add_paper("a", 1999.0)
        assert len(builder) == 1
        assert "a" in builder
        assert "b" not in builder

    def test_forward_references_resolved_at_build(self):
        builder = NetworkBuilder()
        builder.add_paper("b", 2001.0, references=["a"])  # a added later
        builder.add_paper("a", 1999.0)
        assert builder.build().n_citations == 1


class TestMissingReferencePolicy:
    def test_skip_policy_drops(self):
        builder = NetworkBuilder(missing_references="skip")
        builder.add_paper("a", 1999.0, references=["ghost"])
        assert builder.build().n_citations == 0

    def test_error_policy_raises(self):
        builder = NetworkBuilder(missing_references="error")
        builder.add_paper("a", 1999.0, references=["ghost"])
        with pytest.raises(GraphError, match="unknown paper"):
            builder.build()

    def test_invalid_policy_rejected(self):
        with pytest.raises(GraphError, match="unknown missing-reference"):
            NetworkBuilder(missing_references="ignore")


class TestReferenceNormalisation:
    def test_self_reference_dropped(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0, references=["a"])
        assert builder.build().n_citations == 0

    def test_duplicate_references_deduped(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0)
        builder.add_paper("b", 2001.0, references=["a", "a", "a"])
        assert builder.build().n_citations == 1

    def test_add_reference_after_paper(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0)
        builder.add_paper("b", 2001.0)
        builder.add_reference("b", "a")
        assert builder.build().n_citations == 1

    def test_add_reference_unknown_citing_raises(self):
        builder = NetworkBuilder()
        with pytest.raises(GraphError, match="unknown citing"):
            builder.add_reference("nope", "a")


class TestMetadataInterning:
    def test_shared_author_names_shared_indices(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0, authors=["smith", "jones"])
        builder.add_paper("b", 2001.0, authors=["smith"])
        network = builder.build()
        assert network.n_authors == 2
        smith = network.paper_authors[0][0]
        assert network.paper_authors[1] == (smith,)

    def test_no_authors_anywhere_means_none(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0)
        assert builder.build().paper_authors is None

    def test_partial_authorship_allowed(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0, authors=["x"])
        builder.add_paper("b", 2001.0)
        network = builder.build()
        assert network.paper_authors == ((0,), ())

    def test_venue_interning(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0, venue="ICDE")
        builder.add_paper("b", 2001.0, venue="VLDB")
        builder.add_paper("c", 2002.0, venue="ICDE")
        network = builder.build()
        assert network.n_venues == 2
        assert network.paper_venues.tolist() == [0, 1, 0]

    def test_missing_venue_is_minus_one(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0, venue="ICDE")
        builder.add_paper("b", 2001.0)
        assert builder.build().paper_venues.tolist() == [0, -1]

    def test_no_venues_anywhere_means_none(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0)
        assert builder.build().paper_venues is None


class TestExtending:
    @pytest.fixture
    def base(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0)
        builder.add_paper("b", 2001.0, references=["a"])
        return builder.build()

    def test_appends_preserving_base_indices(self, base):
        builder = NetworkBuilder.extending(base)
        builder.add_paper("c", 2002.0, references=["a", "b"])
        extended = builder.build()
        assert extended.paper_ids == ("a", "b", "c")
        assert extended.index_of("a") == 0
        assert extended.index_of("c") == 2
        assert extended.n_citations == 3

    def test_new_papers_may_cite_each_other(self, base):
        builder = NetworkBuilder.extending(base)
        builder.add_paper("c", 2002.0)
        builder.add_paper("d", 2003.0, references=["c", "b"])
        extended = builder.build()
        assert extended.n_citations == 3
        assert extended.in_degree.tolist() == [1, 1, 1, 0]

    def test_base_ids_count_as_duplicates(self, base):
        builder = NetworkBuilder.extending(base)
        with pytest.raises(GraphError, match="duplicate"):
            builder.add_paper("a", 2005.0)

    def test_contains_sees_base_and_new(self, base):
        builder = NetworkBuilder.extending(base)
        builder.add_paper("c", 2002.0)
        assert "a" in builder and "c" in builder
        assert "z" not in builder
        assert len(builder) == 1  # new papers only

    def test_skip_policy_drops_unknown_references(self, base):
        builder = NetworkBuilder.extending(base)
        builder.add_paper("c", 2002.0, references=["a", "nope"])
        assert builder.build().n_citations == 2

    def test_error_policy_raises(self, base):
        builder = NetworkBuilder.extending(base, missing_references="error")
        builder.add_paper("c", 2002.0, references=["nope"])
        with pytest.raises(GraphError, match="unknown"):
            builder.build()

    def test_self_and_duplicate_references_dropped(self, base):
        builder = NetworkBuilder.extending(base)
        builder.add_paper("c", 2002.0, references=["c", "a", "a"])
        assert builder.build().n_citations == 2

    def test_metadata_rejected_in_extension_mode(self, base):
        builder = NetworkBuilder.extending(base)
        builder.add_paper("c", 2002.0, authors=["X"])
        with pytest.raises(GraphError, match="extension"):
            builder.build()

    def test_base_is_untouched(self, base):
        builder = NetworkBuilder.extending(base)
        builder.add_paper("c", 2002.0, references=["a"])
        builder.build()
        assert base.n_papers == 2
        assert base.n_citations == 1

    def test_base_metadata_extended_with_blanks(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0, authors=["X"], venue="ICDE")
        base = builder.build()
        extension = NetworkBuilder.extending(base)
        extension.add_paper("b", 2001.0, references=["a"])
        extended = extension.build()
        assert extended.paper_authors == ((0,), ())
        assert extended.paper_venues.tolist() == [0, -1]

    def test_network_extend_rejects_unknown_endpoints(self, base):
        with pytest.raises(GraphError, match="unknown cited"):
            base.extend(["c"], [2002.0], [("c", "nope")])
        with pytest.raises(GraphError, match="unknown citing"):
            base.extend(["c"], [2002.0], [("nope", "a")])

    def test_network_extend_length_mismatch(self, base):
        with pytest.raises(GraphError, match="publication times"):
            base.extend(["c", "d"], [2002.0], [])
