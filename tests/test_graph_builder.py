"""Unit tests for repro.graph.builder.NetworkBuilder."""

import pytest

from repro.errors import GraphError
from repro.graph.builder import NetworkBuilder


class TestAddPaper:
    def test_basic_build(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0)
        builder.add_paper("b", 2001.0, references=["a"])
        network = builder.build()
        assert network.n_papers == 2
        assert network.n_citations == 1

    def test_duplicate_id_rejected(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0)
        with pytest.raises(GraphError, match="duplicate"):
            builder.add_paper("a", 2000.0)

    def test_len_and_contains(self):
        builder = NetworkBuilder()
        assert len(builder) == 0
        builder.add_paper("a", 1999.0)
        assert len(builder) == 1
        assert "a" in builder
        assert "b" not in builder

    def test_forward_references_resolved_at_build(self):
        builder = NetworkBuilder()
        builder.add_paper("b", 2001.0, references=["a"])  # a added later
        builder.add_paper("a", 1999.0)
        assert builder.build().n_citations == 1


class TestMissingReferencePolicy:
    def test_skip_policy_drops(self):
        builder = NetworkBuilder(missing_references="skip")
        builder.add_paper("a", 1999.0, references=["ghost"])
        assert builder.build().n_citations == 0

    def test_error_policy_raises(self):
        builder = NetworkBuilder(missing_references="error")
        builder.add_paper("a", 1999.0, references=["ghost"])
        with pytest.raises(GraphError, match="unknown paper"):
            builder.build()

    def test_invalid_policy_rejected(self):
        with pytest.raises(GraphError, match="unknown missing-reference"):
            NetworkBuilder(missing_references="ignore")


class TestReferenceNormalisation:
    def test_self_reference_dropped(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0, references=["a"])
        assert builder.build().n_citations == 0

    def test_duplicate_references_deduped(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0)
        builder.add_paper("b", 2001.0, references=["a", "a", "a"])
        assert builder.build().n_citations == 1

    def test_add_reference_after_paper(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0)
        builder.add_paper("b", 2001.0)
        builder.add_reference("b", "a")
        assert builder.build().n_citations == 1

    def test_add_reference_unknown_citing_raises(self):
        builder = NetworkBuilder()
        with pytest.raises(GraphError, match="unknown citing"):
            builder.add_reference("nope", "a")


class TestMetadataInterning:
    def test_shared_author_names_shared_indices(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0, authors=["smith", "jones"])
        builder.add_paper("b", 2001.0, authors=["smith"])
        network = builder.build()
        assert network.n_authors == 2
        smith = network.paper_authors[0][0]
        assert network.paper_authors[1] == (smith,)

    def test_no_authors_anywhere_means_none(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0)
        assert builder.build().paper_authors is None

    def test_partial_authorship_allowed(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0, authors=["x"])
        builder.add_paper("b", 2001.0)
        network = builder.build()
        assert network.paper_authors == ((0,), ())

    def test_venue_interning(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0, venue="ICDE")
        builder.add_paper("b", 2001.0, venue="VLDB")
        builder.add_paper("c", 2002.0, venue="ICDE")
        network = builder.build()
        assert network.n_venues == 2
        assert network.paper_venues.tolist() == [0, 1, 0]

    def test_missing_venue_is_minus_one(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0, venue="ICDE")
        builder.add_paper("b", 2001.0)
        assert builder.build().paper_venues.tolist() == [0, -1]

    def test_no_venues_anywhere_means_none(self):
        builder = NetworkBuilder()
        builder.add_paper("a", 1999.0)
        assert builder.build().paper_venues is None
