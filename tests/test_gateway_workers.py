"""Tests for repro.gateway.workers — the pre-forked SO_REUSEPORT fleet.

These fork real processes and open real sockets, so each test keeps
the fleet small (two workers) and the load light; saturation behaviour
lives in the `gateway_mp` bench scenario, and crash behaviour under
concurrent load in the `worker` chaos scenario.
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request

import pytest

from repro.errors import GatewayError
from repro.gateway import GatewayConfig, MultiWorkerGateway
from repro.gateway.workers import worker_ports
from repro.serve import RankingService, ScoreIndex, result_payload
from repro.serve.shm import iter_repro_segments
from repro.stream import EventLog, StreamIngestor
from repro.synth import toy_network


def _make_service(methods=("CC", "PR")) -> RankingService:
    index = ScoreIndex(toy_network())
    for label in methods:
        index.add_method(label)
    return RankingService(index)


def _get(port, target, timeout=10.0):
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{target}", timeout=timeout
    ) as response:
        return response.status, json.loads(response.read())


@pytest.fixture(autouse=True)
def _no_leaked_segments():
    before = set(iter_repro_segments())
    yield
    leaked = set(iter_repro_segments()) - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


class TestFleetServing:
    def test_two_workers_answer_bit_identically(self):
        service = _make_service()
        gateway = MultiWorkerGateway(service, workers=2)
        with gateway:
            assert len(worker_ports(gateway)) == 2
            assert set(worker_ports(gateway)) == {gateway.port}
            expected = result_payload(service.top_k("CC", k=5))
            # Each request may land on either worker; enough of them
            # exercises both, and every answer must equal a direct
            # service call on the snapshot the fleet serves.
            for _ in range(8):
                status, document = _get(
                    gateway.port, "/v1/top?method=CC&k=5"
                )
                assert status == 200
                assert document["result"] == expected
                assert document["version"] == service.version
            status, health = _get(gateway.port, "/v1/healthz")
            assert status == 200
            assert health["status"] == "ok"

    def test_aggregate_metrics_sees_the_whole_fleet(self):
        gateway = MultiWorkerGateway(_make_service(), workers=2)
        with gateway:
            for _ in range(6):
                _get(gateway.port, "/v1/top?method=PR&k=3")
            fleet = gateway.aggregate_metrics()
        assert fleet["workers"]["count"] == 2
        assert fleet["workers"]["restarts"] == 0
        assert fleet["requests"]["started"] >= 6
        assert fleet["responses"]["by_status"].get("200", 0) >= 6
        assert fleet["responses"]["errors_5xx"] == 0
        # Fleet quantiles come from summed bucket counts, so the
        # merged histogram saw every request, not a per-worker sample.
        assert fleet["latency"]["overall"]["count"] >= 6

    def test_supervisor_restarts_a_killed_worker(self):
        gateway = MultiWorkerGateway(_make_service(), workers=2)
        with gateway:
            victim = gateway._slots[0].process
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(10.0)
            deadline = time.monotonic() + 10.0
            while gateway.restarts == 0 and time.monotonic() < deadline:
                gateway.supervise_once()
                time.sleep(0.01)
            assert gateway.restarts == 1
            # The replacement joined the SO_REUSEPORT group and serves.
            status, document = _get(gateway.port, "/v1/top?method=CC&k=2")
            assert status == 200
            assert document["result"]["entries"]
            assert len(worker_ports(gateway)) == 2

    def test_live_updates_publish_new_generations(self):
        log = EventLog.from_network(toy_network())
        ingestor = StreamIngestor(
            log, ("CC",), batch_size=4, bootstrap_size=len(log) // 2
        )
        ingestor.step()  # bootstrap -> version 0
        service = ingestor.service
        before = service.version
        gateway = MultiWorkerGateway(
            service,
            workers=2,
            config=GatewayConfig(port=0, update_interval=0.0),
            ingestor=ingestor,
        )
        with gateway:
            deadline = time.monotonic() + 20.0
            while (
                gateway.updates_applied == 0
                and time.monotonic() < deadline
            ):
                gateway.supervise_once()
                time.sleep(0.01)
            assert gateway.updates_applied >= 1
            # Workers converge on the published generation: a fresh
            # response eventually reports the bumped version.
            deadline = time.monotonic() + 20.0
            seen = 0
            while time.monotonic() < deadline:
                _, document = _get(gateway.port, "/v1/top?method=CC&k=2")
                seen = document["version"]
                if seen > before:
                    break
                time.sleep(0.01)
            assert seen > before

    def test_stop_reaps_workers_and_segments(self):
        gateway = MultiWorkerGateway(_make_service(), workers=2)
        gateway.start()
        session = gateway.session
        pids = [slot.process.pid for slot in gateway._slots]
        fleet = gateway.stop()
        assert fleet is not None and fleet["workers"]["count"] == 2
        for pid in pids:
            with pytest.raises(OSError):
                os.kill(pid, 0)  # ESRCH: the worker is gone
        assert not [
            name for name in iter_repro_segments() if session in name
        ]

    def test_rejects_bad_configurations(self):
        service = _make_service()
        with pytest.raises(GatewayError, match="workers must be"):
            MultiWorkerGateway(service, workers=0)
        log = EventLog.from_network(toy_network())
        other = StreamIngestor(
            log, ("CC",), batch_size=4, bootstrap_size=len(log) // 2
        )
        other.step()  # its service is NOT the backend below
        with pytest.raises(GatewayError, match="must be the backend"):
            MultiWorkerGateway(service, workers=1, ingestor=other)


class TestServeHttpSignals:
    @pytest.mark.parametrize("extra", [[], ["--workers", "2"]])
    def test_sigterm_drains_and_exits_zero(self, tmp_path, extra):
        index = ScoreIndex(toy_network())
        index.add_method("CC")
        index_path = tmp_path / "index.npz"
        index.save(str(index_path))
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve-http",
                "--index", str(index_path), "--port", "0", *extra,
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        try:
            # Wait for the CLI's own "serving ... on http://..." line —
            # worker log lines appear first, and a SIGTERM before
            # startup finishes would race the handler installation.
            for _ in range(50):
                line = process.stdout.readline()
                if "http://" in line:
                    break
            else:  # pragma: no cover - startup failure
                raise AssertionError("serve-http never reported serving")
            time.sleep(0.5)  # let the serve loop install its handlers
            process.send_signal(signal.SIGTERM)
            remainder, _ = process.communicate(timeout=30)
        finally:
            if process.poll() is None:
                process.kill()
                process.wait()
        assert process.returncode == 0, remainder
        assert "gateway drained and stopped" in remainder
