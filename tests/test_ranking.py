"""Unit tests for repro.ranking (the method interface)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.ranking import (
    RankingMethod,
    ranking_from_scores,
    top_k_indices,
)


class TestRankingFromScores:
    def test_descending_order(self):
        ranking = ranking_from_scores(np.array([0.1, 0.9, 0.5]))
        assert ranking.tolist() == [1, 2, 0]

    def test_ties_broken_by_index(self):
        ranking = ranking_from_scores(np.array([0.5, 0.9, 0.5, 0.5]))
        assert ranking.tolist() == [1, 0, 2, 3]

    def test_rejects_matrix(self):
        with pytest.raises(ConfigurationError):
            ranking_from_scores(np.ones((2, 2)))

    def test_rejects_nan(self):
        with pytest.raises(ConfigurationError, match="non-finite"):
            ranking_from_scores(np.array([1.0, np.nan]))

    def test_empty(self):
        assert ranking_from_scores(np.array([])).size == 0


class TestTopK:
    def test_top_k(self):
        scores = np.array([0.3, 0.9, 0.1, 0.5])
        assert top_k_indices(scores, 2).tolist() == [1, 3]

    def test_k_exceeds_length(self):
        assert top_k_indices(np.array([1.0, 2.0]), 10).size == 2

    def test_negative_k_rejected(self):
        with pytest.raises(ConfigurationError):
            top_k_indices(np.array([1.0]), -1)


class TestRankingMethodInterface:
    class Constant(RankingMethod):
        name = "CONST"

        def __init__(self, values):
            self.values = np.asarray(values, dtype=float)

        def scores(self, network):
            return self.values

        def params(self):
            return {"n": self.values.size}

    def test_rank_uses_scores(self, toy):
        method = self.Constant(np.arange(8.0))
        assert method.rank(toy).tolist() == list(range(7, -1, -1))

    def test_describe_includes_params(self):
        method = self.Constant(np.ones(3))
        assert method.describe() == "CONST(n=3)"

    def test_default_params_empty(self, toy):
        class Bare(RankingMethod):
            name = "BARE"

            def scores(self, network):
                return np.ones(network.n_papers)

        assert dict(Bare().params()) == {}
        assert Bare().describe() == "BARE()"
