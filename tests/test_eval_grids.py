"""Unit tests for the paper's parameter grids (Tables 3 and 4)."""

import pytest

from repro.baselines import make_method
from repro.errors import ConfigurationError
from repro.eval.grids import (
    att_only_grid,
    attrank_grid,
    citerank_grid,
    ecm_grid,
    futurerank_grid,
    grid_for,
    grid_size,
    no_att_grid,
    ram_grid,
    wsdm_grid,
)


class TestGridSizesMatchPaper:
    """Section 4.3 reports the exact number of settings per method."""

    def test_citerank_20(self):
        assert grid_size("CR") == 20

    def test_futurerank_120(self):
        assert grid_size("FR") == 120

    def test_ram_9(self):
        assert grid_size("RAM") == 9

    def test_ecm_25(self):
        assert grid_size("ECM") == 25

    def test_wsdm_50(self):
        assert grid_size("WSDM") == 50

    def test_attrank_250(self):
        # 50 coefficient pairs x 5 attention windows (Table 3).
        assert grid_size("AR") == 250


class TestGridContents:
    def test_attrank_constraints(self):
        for params in attrank_grid():
            total = params["alpha"] + params["beta"] + params["gamma"]
            assert total == pytest.approx(1.0)
            assert 0.0 <= params["alpha"] <= 0.5
            assert 0.0 <= params["beta"] <= 1.0
            assert 0.0 <= params["gamma"] <= 0.9
            assert params["attention_window"] in (1.0, 2.0, 3.0, 4.0, 5.0)

    def test_attrank_includes_paper_optima(self):
        """The settings the paper reports as optimal must be reachable."""
        grid = list(attrank_grid())
        for alpha, beta, gamma, y in [
            (0.3, 0.4, 0.3, 1.0),   # hep-th
            (0.3, 0.3, 0.4, 3.0),   # APS
            (0.0, 0.4, 0.6, 4.0),   # PMC
            (0.2, 0.4, 0.4, 3.0),   # DBLP
            (0.5, 0.3, 0.2, 1.0),   # DBLP nDCG
        ]:
            assert any(
                p["alpha"] == pytest.approx(alpha)
                and p["beta"] == pytest.approx(beta)
                and p["gamma"] == pytest.approx(gamma)
                and p["attention_window"] == y
                for p in grid
            ), (alpha, beta, gamma, y)

    def test_futurerank_sums_to_one(self):
        for params in futurerank_grid():
            total = params["alpha"] + params["beta"] + params["gamma"]
            assert total == pytest.approx(1.0)

    def test_citerank_values(self):
        settings = list(citerank_grid())
        alphas = {p["alpha"] for p in settings}
        taus = {p["tau_dir"] for p in settings}
        assert alphas == {0.1, 0.3, 0.5, 0.7}
        assert taus == {2.0, 4.0, 6.0, 8.0, 10.0}

    def test_ram_values(self):
        gammas = [p["gamma"] for p in ram_grid()]
        assert gammas == pytest.approx([0.1 * i for i in range(1, 10)])

    def test_ecm_values(self):
        for params in ecm_grid():
            assert 0.1 <= params["alpha"] <= 0.5
            assert 0.1 <= params["gamma"] <= 0.5

    def test_wsdm_values(self):
        for params in wsdm_grid():
            assert params["iterations"] in (4, 5)
            assert 1.0 <= params["beta"] <= 5.0


class TestAblationSlices:
    def test_no_att_all_beta_zero(self):
        settings = list(no_att_grid())
        assert settings
        assert all(p["beta"] == 0.0 for p in settings)

    def test_att_only_five_windows(self):
        settings = list(att_only_grid())
        assert len(settings) == 5
        assert all(p["beta"] == 1.0 and p["alpha"] == 0.0 for p in settings)

    def test_ablation_slices_inside_attrank_grid(self):
        full = {tuple(sorted(p.items())) for p in attrank_grid()}
        for p in att_only_grid():
            assert tuple(sorted(p.items())) in full
        for p in no_att_grid():
            assert tuple(sorted(p.items())) in full


class TestGridConstructibility:
    @pytest.mark.parametrize("method", ["CR", "FR", "RAM", "ECM", "WSDM", "AR"])
    def test_every_setting_constructs(self, method):
        for params in grid_for(method):
            make_method(method, **params)

    def test_unknown_method_rejected(self):
        with pytest.raises(ConfigurationError):
            grid_for("CC")
