"""Unit tests for repro.gateway metrics and admission control."""

import pytest

from repro.errors import ConfigurationError
from repro.gateway import (
    AdmissionController,
    BatchSizeHistogram,
    GatewayMetrics,
    LatencyHistogram,
    TokenBucket,
)


class TestLatencyHistogram:
    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.quantile(0.5) == 0.0
        assert hist.mean == 0.0

    def test_quantiles_are_ordered_and_bounded(self):
        hist = LatencyHistogram()
        for ms in (1, 1, 1, 2, 2, 5, 10, 10, 50, 400):
            hist.observe(ms / 1000.0)
        p50, p95, p99 = (
            hist.quantile(0.5), hist.quantile(0.95), hist.quantile(0.99)
        )
        assert 0 < p50 <= p95 <= p99 <= hist.max_seconds
        # p50 should land near the 2ms observations (one bucket slack).
        assert 0.001 < p50 < 0.004

    def test_quantile_never_exceeds_observed_max(self):
        hist = LatencyHistogram()
        hist.observe(0.0021)
        assert hist.quantile(0.99) <= hist.max_seconds

    def test_overflow_bucket_reports_max(self):
        hist = LatencyHistogram()
        hist.observe(120.0)  # beyond the last bound
        assert hist.quantile(0.99) == 120.0

    def test_snapshot_fields_in_milliseconds(self):
        hist = LatencyHistogram()
        hist.observe(0.010)
        snapshot = hist.snapshot()
        assert snapshot["count"] == 1
        assert snapshot["mean_ms"] == pytest.approx(10.0)
        assert snapshot["p50_ms"] >= 10.0 * 0.75   # within one bucket

    def test_interpolated_p50_error_regression(self):
        # Regression pin for the upper-bound bias fix: on a uniform
        # 1..937 ms distribution the true median is ~469 ms.  The old
        # bucket-upper-bound rule reported 500 ms (+6.6%); within-bucket
        # interpolation must stay inside 2%.
        hist = LatencyHistogram()
        for ms in range(1, 938):
            hist.observe(ms / 1000.0)
        true_median = 0.469
        p50 = hist.quantile(0.5)
        assert abs(p50 - true_median) / true_median < 0.02
        # And the bias really is gone: strictly below the bucket's
        # upper bound the old rule would have returned.
        assert p50 < 0.5

    def test_bucket_pairs_cumulative_export(self):
        hist = LatencyHistogram()
        hist.observe(0.002)
        hist.observe(0.004)
        hist.observe(120.0)  # overflow bucket
        pairs = hist.bucket_pairs()
        assert pairs[-1] == ("+Inf", 3)
        cumulative = [count for _, count in pairs]
        assert cumulative == sorted(cumulative)
        assert hist.sum == pytest.approx(120.006)


class TestBatchSizeHistogram:
    def test_bucket_pairs_power_of_two_bounds(self):
        hist = BatchSizeHistogram()
        for size in (1, 2, 3, 2000):
            hist.observe(size)
        pairs = dict(hist.bucket_pairs())
        assert pairs["1"] == 1
        assert pairs["2"] == 2
        assert pairs["4"] == 3
        assert pairs["+Inf"] == 4

    def test_distribution_buckets(self):
        hist = BatchSizeHistogram()
        for size in (1, 1, 2, 4, 7, 64):
            hist.observe(size)
        snapshot = hist.snapshot()
        assert snapshot["batches"] == 6
        assert snapshot["requests"] == 79
        assert snapshot["distribution"]["1"] == 2
        assert snapshot["distribution"]["2"] == 1
        assert snapshot["distribution"]["3-4"] == 1
        assert snapshot["distribution"]["5-8"] == 1
        assert snapshot["distribution"]["33-64"] == 1
        assert snapshot["mean_batch_size"] == pytest.approx(79 / 6)


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=2)
        assert bucket.take(now=0.0)
        assert bucket.take(now=0.0)
        assert not bucket.take(now=0.0)
        assert bucket.take(now=0.11)   # ~1 token refilled
        assert not bucket.take(now=0.11)

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=3)
        for _ in range(3):
            assert bucket.take(now=0.0)
        # A long idle period refills to burst, not beyond.
        for _ in range(3):
            assert bucket.take(now=100.0)
        assert not bucket.take(now=100.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=0.0, burst=1)
        with pytest.raises(ConfigurationError):
            TokenBucket(rate=1.0, burst=0)


class TestAdmissionController:
    def test_sheds_503_beyond_capacity(self):
        admission = AdmissionController(max_inflight=2, max_queue=1)
        decisions = [admission.try_admit("top") for _ in range(4)]
        assert [d.admitted for d in decisions] == [True, True, True, False]
        assert decisions[3].status == 503
        assert decisions[3].reason == "queue-full"
        admission.release()
        assert admission.try_admit("top").admitted

    def test_rate_limit_sheds_429_before_capacity(self):
        admission = AdmissionController(
            max_inflight=100,
            max_queue=100,
            rate_limits={"top": TokenBucket(rate=1.0, burst=1)},
        )
        assert admission.try_admit("top", now=0.0).admitted
        shed = admission.try_admit("top", now=0.0)
        assert not shed.admitted
        assert shed.status == 429
        assert shed.reason == "rate-limited"
        # Other endpoints are unaffected by the bucket.
        assert admission.try_admit("paper", now=0.0).admitted

    def test_draining_sheds_everything(self):
        admission = AdmissionController(max_inflight=8, max_queue=8)
        assert admission.try_admit("top").admitted
        admission.start_draining()
        decision = admission.try_admit("top")
        assert not decision.admitted
        assert decision.status == 503
        assert decision.reason == "draining"
        admission.release()    # admitted-before-drain work still finishes
        assert admission.active == 0

    def test_snapshot_counters(self):
        admission = AdmissionController(max_inflight=2, max_queue=0)
        admission.try_admit("top")
        admission.try_admit("top")
        admission.try_admit("top")        # shed
        snapshot = admission.snapshot()
        assert snapshot["active"] == 2
        assert snapshot["peak_active"] == 2
        assert snapshot["admitted_total"] == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ConfigurationError):
            AdmissionController(max_queue=-1)


class TestGatewayMetrics:
    def test_render_document(self):
        metrics = GatewayMetrics()
        metrics.note_request("top")
        metrics.note_response("top", 200, 0.002)
        metrics.note_request("paper")
        metrics.note_response("paper", 404, 0.001)
        metrics.note_response("top", 429, 0.0001)
        metrics.note_response("top", 503, 0.0001)
        metrics.note_update()
        metrics.batch_sizes.observe(3)
        document = metrics.render({"hits": 5, "misses": 2})
        assert document["requests"]["by_endpoint"] == {
            "top": 1, "paper": 1,
        }
        assert document["responses"]["by_status"]["200"] == 1
        assert document["responses"]["shed_429"] == 1
        assert document["responses"]["shed_503"] == 1
        assert document["responses"]["errors_5xx"] == 1
        assert document["latency"]["overall"]["count"] == 4
        assert document["coalescing"]["batches"] == 1
        assert document["stream_updates"]["applied"] == 1
        assert document["result_cache"]["hits"] == 5

    def test_combined_latency_pools_endpoints(self):
        metrics = GatewayMetrics()
        metrics.latency("top").observe(0.001)
        metrics.latency("paper").observe(0.100)
        pooled = metrics.combined_latency()
        assert pooled.count == 2
        assert pooled.max_seconds == pytest.approx(0.100)
