"""Execute every ``python`` code block in the documentation.

The docs promise runnable examples; this module keeps that promise
honest.  For each documented file, the fenced ``python`` blocks are
extracted in order and executed top-to-bottom in one shared namespace
(so later blocks may build on earlier ones, like a script split into
sections).  A block can opt out by being immediately preceded by the
marker comment ``<!-- docs: no-run -->``.

CI runs this as the "docs" job; locally it is part of the tier-1 suite.
"""

from __future__ import annotations

import os
import re

import pytest

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: The documentation files whose python blocks must execute.
DOCUMENTED_FILES = (
    "README.md",
    os.path.join("docs", "API.md"),
    os.path.join("docs", "ARCHITECTURE.md"),
    os.path.join("docs", "OBSERVABILITY.md"),
    os.path.join("docs", "RELIABILITY.md"),
    os.path.join("docs", "SOLVER.md"),
)

NO_RUN_MARKER = "<!-- docs: no-run -->"

_FENCE = re.compile(
    r"^(?P<indent>[ ]*)```(?P<lang>[A-Za-z0-9_+-]*)[ ]*$"
)


def extract_python_blocks(text: str) -> list[tuple[int, str]]:
    """``(start_line, source)`` for each runnable ``python`` fence."""
    blocks: list[tuple[int, str]] = []
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        match = _FENCE.match(lines[index])
        if match and match.group("lang") == "python":
            preceding = ""
            for back in range(index - 1, -1, -1):
                if lines[back].strip():
                    preceding = lines[back].strip()
                    break
            start = index + 1
            body: list[str] = []
            index += 1
            while index < len(lines) and not _FENCE.match(lines[index]):
                body.append(lines[index])
                index += 1
            if preceding != NO_RUN_MARKER:
                blocks.append((start + 1, "\n".join(body)))
        index += 1
    return blocks


@pytest.mark.parametrize(
    "relative_path",
    DOCUMENTED_FILES,
    ids=[path.replace(os.sep, "/") for path in DOCUMENTED_FILES],
)
def test_documented_code_runs(relative_path, tmp_path, monkeypatch):
    path = os.path.join(REPO_ROOT, relative_path)
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    blocks = extract_python_blocks(text)
    if not blocks:
        pytest.skip(f"{relative_path} has no python blocks")
    # Examples that write files must land in a scratch directory.
    monkeypatch.chdir(tmp_path)
    namespace: dict = {"__name__": "__docs__"}
    for line, source in blocks:
        try:
            exec(compile(source, f"{relative_path}:{line}", "exec"), namespace)
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(
                f"{relative_path} code block at line {line} failed: "
                f"{type(error).__name__}: {error}"
            )


def test_readme_and_api_have_examples():
    """The docs pass must not silently lose its runnable examples."""
    for relative_path in ("README.md", os.path.join("docs", "API.md")):
        with open(
            os.path.join(REPO_ROOT, relative_path), encoding="utf-8"
        ) as handle:
            assert extract_python_blocks(handle.read()), relative_path
