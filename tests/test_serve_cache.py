"""Cache counter correctness (incl. across invalidation) and the
cache-aware batched read path (`RankingService.execute_batch`)."""

import pytest

from repro.errors import ConfigurationError
from repro.serve import (
    CompareQuery,
    LRUCache,
    PaperQuery,
    RankingService,
    ScoreIndex,
    TopKQuery,
)
from repro.synth import toy_network


class TestCounterCorrectness:
    def test_hits_misses_evictions(self):
        cache = LRUCache(maxsize=2)
        assert cache.get("a") is None           # miss
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1              # hit (refreshes a)
        cache.put("c", 3)                       # evicts b (LRU)
        assert cache.get("b") is None           # miss
        stats = cache.stats()
        assert (stats.hits, stats.misses, stats.evictions) == (1, 2, 1)
        assert stats.size == 2 and stats.maxsize == 2
        assert stats.hit_rate == pytest.approx(1 / 3)

    def test_counters_survive_invalidation(self):
        """clear() drops entries, counts itself, and keeps history."""
        cache = LRUCache(maxsize=8)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("b") is None
        before = cache.stats()
        cache.clear()
        after = cache.stats()
        assert len(cache) == 0
        assert after.hits == before.hits == 1
        assert after.misses == before.misses == 1
        assert after.evictions == before.evictions == 0
        assert before.invalidations == 0
        assert after.invalidations == 1
        # Post-invalidation lookups keep accumulating on top.
        assert cache.get("a") is None
        cache.clear()
        final = cache.stats()
        assert final.misses == 2
        assert final.invalidations == 2

    def test_as_dict_is_json_ready(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        payload = cache.stats().as_dict()
        assert payload["hits"] == 1
        assert payload["invalidations"] == 0
        assert 0.0 <= payload["hit_rate"] <= 1.0
        # The annotation says ``dict[str, int | float]`` and the
        # values must match it: counters stay exact ints (bench
        # diffs compare them by equality), only hit_rate is a float.
        for key, value in payload.items():
            if key == "hit_rate":
                assert type(value) is float, key
            else:
                assert type(value) is int, key

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ConfigurationError):
            LRUCache(maxsize=0)


@pytest.fixture
def service():
    index = ScoreIndex(toy_network())
    index.add_method("CC")
    index.add_method("PR")
    return RankingService(index)


class TestExecuteBatch:
    def test_results_match_single_query_paths(self, service):
        queries = [
            TopKQuery(method="cc", k=3),
            PaperQuery(paper_id="A"),
            CompareQuery(methods=("CC", "PR"), k=4),
        ]
        version, results = service.execute_batch(queries)
        assert version == 0
        assert results[0] == service.top_k("CC", k=3)
        assert results[1] == service.paper("A")
        assert results[2] == service.compare(("CC", "PR"), k=4)

    def test_batch_shares_cache_with_top_k(self, service):
        service.top_k("CC", k=3)                # seeds the page
        before = service.cache_stats()
        _, (page,) = service.execute_batch([TopKQuery(method="CC", k=3)])
        after = service.cache_stats()
        assert after.hits == before.hits + 1    # served from cache
        assert page == service.top_k("CC", k=3)

    def test_repeat_batch_hits_cache(self, service):
        queries = [
            TopKQuery(method="CC", k=2),
            PaperQuery(paper_id="B"),
            CompareQuery(methods=("CC", "PR"), k=3),
        ]
        first_version, first = service.execute_batch(queries)
        misses_after_first = service.cache_stats().misses
        second_version, second = service.execute_batch(queries)
        stats = service.cache_stats()
        assert first == second
        assert first_version == second_version
        assert stats.misses == misses_after_first   # all hits
        assert stats.hits >= len(queries)

    def test_update_invalidates_batch_cache(self, service):
        from repro.serve import NetworkDelta

        _, (page_v0,) = service.execute_batch([TopKQuery(method="CC", k=3)])
        service.update(
            NetworkDelta(
                papers=(("NEW", 2005.0),), citations=(("NEW", "A"),)
            )
        )
        assert service.cache_stats().invalidations >= 1
        version, (page_v1,) = service.execute_batch(
            [TopKQuery(method="CC", k=3)]
        )
        assert version == 1
        assert page_v1.version == 1
        assert page_v1.entries[0].score != page_v0.entries[0].score or (
            page_v1 != page_v0
        )

    def test_invalid_query_raises_typed(self, service):
        with pytest.raises(ConfigurationError):
            service.execute_batch([TopKQuery(method="CC", k=0)])
        with pytest.raises(ConfigurationError):
            service.execute_batch(
                [CompareQuery(methods=("CC", "CC"), k=2)]
            )
        with pytest.raises(ConfigurationError):
            service.execute_batch(["not a query"])  # type: ignore[list-item]
