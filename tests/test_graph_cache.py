"""Tests of the per-network derived-structure cache (repro.graph.cache)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.attention import attention_vector
from repro.core.recency import fit_decay_rate, recency_vector
from repro.baselines.ram import retained_edge_weights
from repro.graph.cache import (
    cached_keys,
    clear_derived,
    derived_store,
    memoize_on,
)
from repro.graph.matrix import StochasticOperator, shared_operator


class TestMemoizeOn:
    def test_factory_runs_once(self, toy):
        calls = []

        def factory():
            calls.append(1)
            return object()

        first = memoize_on(toy, ("k",), factory)
        second = memoize_on(toy, ("k",), factory)
        assert first is second
        assert len(calls) == 1
        clear_derived(toy)

    def test_distinct_keys_distinct_values(self, toy):
        a = memoize_on(toy, ("k", 1), lambda: [1])
        b = memoize_on(toy, ("k", 2), lambda: [2])
        assert a != b
        clear_derived(toy)

    def test_cached_arrays_are_read_only(self, toy):
        vector = memoize_on(toy, ("arr",), lambda: np.ones(3))
        with pytest.raises(ValueError):
            vector[0] = 2.0
        clear_derived(toy)

    def test_cached_sparse_matrices_are_read_only(self, toy):
        import scipy.sparse as sp

        matrix = memoize_on(
            toy, ("sp",), lambda: sp.csr_matrix(np.eye(3))
        )
        with pytest.raises(ValueError):
            matrix.data[0] = 5.0
        clear_derived(toy)

    def test_clear_derived_forgets(self, toy):
        memoize_on(toy, ("k",), lambda: 1)
        assert ("k",) in cached_keys(toy)
        clear_derived(toy)
        assert cached_keys(toy) == ()

    def test_store_is_per_network(self, toy, chain):
        memoize_on(toy, ("k",), lambda: "toy")
        memoize_on(chain, ("k",), lambda: "chain")
        assert derived_store(toy)[("k",)] == "toy"
        assert derived_store(chain)[("k",)] == "chain"
        clear_derived(toy)
        clear_derived(chain)

    def test_store_dies_with_network(self, toy):
        import gc

        from repro.graph.cache import _STORES
        from repro.synth.scenarios import toy_network

        transient = toy_network()
        memoize_on(transient, ("k",), lambda: 1)
        assert transient in _STORES
        del transient
        gc.collect()
        # The weak key releases the store once the network is gone.
        assert all(network is not toy for network in list(_STORES))


class TestSharedStructures:
    def test_shared_operator_is_memoised(self, toy):
        clear_derived(toy)
        first = shared_operator(toy)
        second = shared_operator(toy)
        assert first is second
        clear_derived(toy)

    def test_shared_operator_matches_direct_construction(self, toy):
        vector = np.full(toy.n_papers, 1.0 / toy.n_papers)
        np.testing.assert_array_equal(
            shared_operator(toy).apply(vector),
            StochasticOperator(toy).apply(vector),
        )
        clear_derived(toy)

    def test_attention_vector_cached_per_window(self, hepth_tiny):
        clear_derived(hepth_tiny)
        one = attention_vector(hepth_tiny, 3.0)
        two = attention_vector(hepth_tiny, 3.0)
        other = attention_vector(hepth_tiny, 5.0)
        assert one is two
        assert other is not one
        clear_derived(hepth_tiny)

    def test_attention_vector_distinguishes_now(self, hepth_tiny):
        clear_derived(hepth_tiny)
        implicit = attention_vector(hepth_tiny, 3.0)
        explicit = attention_vector(
            hepth_tiny, 3.0, now=hepth_tiny.latest_time
        )
        # Same resolved reference time -> same cached vector.
        assert implicit is explicit
        earlier = attention_vector(
            hepth_tiny, 3.0, now=hepth_tiny.latest_time - 1.0
        )
        assert earlier is not implicit
        clear_derived(hepth_tiny)

    def test_recency_vector_cached_per_rate(self, hepth_tiny):
        clear_derived(hepth_tiny)
        assert recency_vector(hepth_tiny, -0.2) is recency_vector(
            hepth_tiny, -0.2
        )
        assert recency_vector(hepth_tiny, -0.2) is not recency_vector(
            hepth_tiny, -0.4
        )
        clear_derived(hepth_tiny)

    def test_decay_fit_cached(self, hepth_tiny):
        clear_derived(hepth_tiny)
        assert fit_decay_rate(hepth_tiny) is fit_decay_rate(hepth_tiny)
        clear_derived(hepth_tiny)

    def test_retained_weights_cached_per_gamma(self, hepth_tiny):
        clear_derived(hepth_tiny)
        assert retained_edge_weights(
            hepth_tiny, 0.5
        ) is retained_edge_weights(hepth_tiny, 0.5)
        assert retained_edge_weights(
            hepth_tiny, 0.5
        ) is not retained_edge_weights(hepth_tiny, 0.6)
        clear_derived(hepth_tiny)

    def test_caching_never_changes_scores(self, hepth_split):
        """Cached vs cold evaluations are bit-identical (tentpole
        invariant: hoisting must not move a single bit)."""
        from repro.baselines import make_method

        for label, params in [
            ("AR", dict(alpha=0.2, beta=0.5, gamma=0.3)),
            ("PR", dict(alpha=0.5)),
            ("CR", dict(alpha=0.5, tau_dir=2.0)),
            ("RAM", dict(gamma=0.6)),
            ("ECM", dict(alpha=0.1, gamma=0.3)),
        ]:
            clear_derived(hepth_split.current)
            cold = make_method(label, **params).scores(hepth_split.current)
            warm = make_method(label, **params).scores(hepth_split.current)
            np.testing.assert_array_equal(cold, warm)
        clear_derived(hepth_split.current)
