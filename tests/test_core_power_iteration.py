"""Unit tests for repro.core.power_iteration."""

import numpy as np
import pytest

from repro.errors import ConfigurationError, ConvergenceError
from repro.core.power_iteration import (
    DEFAULT_TOLERANCE,
    grow_start_stack,
    grow_start_vector,
    power_iterate,
    uniform_vector,
)


class TestUniformVector:
    def test_sums_to_one(self):
        vector = uniform_vector(7)
        assert vector.sum() == pytest.approx(1.0)
        assert np.allclose(vector, 1 / 7)

    def test_rejects_non_positive(self):
        with pytest.raises(ConfigurationError):
            uniform_vector(0)


class TestPowerIterate:
    def test_fixed_point_of_stochastic_matrix(self):
        matrix = np.array([[0.9, 0.2], [0.1, 0.8]])
        result, info = power_iterate(lambda x: matrix @ x, 2, tol=1e-14)
        assert info.converged
        # Analytic stationary distribution of this chain is (2/3, 1/3).
        assert np.allclose(result, [2 / 3, 1 / 3], atol=1e-6)

    def test_start_vector_independence(self):
        matrix = np.array([[0.5, 0.3, 0.2]] * 3).T
        matrix = matrix / matrix.sum(axis=0)
        a, _ = power_iterate(lambda x: matrix @ x, 3, tol=1e-14)
        b, _ = power_iterate(
            lambda x: matrix @ x,
            3,
            tol=1e-14,
            start=np.array([1.0, 0.0, 0.0]),
        )
        assert np.allclose(a, b, atol=1e-10)

    def test_identity_converges_immediately(self):
        result, info = power_iterate(lambda x: x, 4)
        assert info.iterations == 1
        assert info.residual == 0.0

    def test_residual_history_recorded(self):
        matrix = np.array([[0.9, 0.2], [0.1, 0.8]])
        _, info = power_iterate(lambda x: matrix @ x, 2, tol=1e-12)
        assert len(info.residual_history) == info.iterations
        # Residuals decrease geometrically for a primitive chain.
        history = info.residual_history
        assert history[-1] <= history[0]

    def test_budget_exhaustion_raises(self):
        # A period-2 permutation never converges from a non-uniform start.
        swap = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ConvergenceError) as error:
            power_iterate(
                lambda x: swap @ x,
                2,
                start=np.array([0.9, 0.1]),
                max_iterations=25,
            )
        assert error.value.iterations == 25
        assert error.value.residual > 0

    def test_budget_exhaustion_soft_mode(self):
        swap = np.array([[0.0, 1.0], [1.0, 0.0]])
        result, info = power_iterate(
            lambda x: swap @ x,
            2,
            start=np.array([0.9, 0.1]),
            max_iterations=10,
            raise_on_failure=False,
        )
        assert not info.converged
        assert result.shape == (2,)

    def test_normalize_false_keeps_scale(self):
        # x <- 0.5 x + c converges to 2c without renormalisation.
        c = np.array([1.0, 3.0])
        result, info = power_iterate(
            lambda x: 0.5 * x + c,
            2,
            normalize=False,
            tol=1e-13,
            max_iterations=200,
        )
        assert np.allclose(result, 2 * c, atol=1e-9)

    def test_start_shape_validated(self):
        with pytest.raises(ConfigurationError, match="start vector"):
            power_iterate(lambda x: x, 3, start=np.ones(5))

    def test_bad_tol_rejected(self):
        with pytest.raises(ConfigurationError):
            power_iterate(lambda x: x, 2, tol=0.0)

    def test_bad_budget_rejected(self):
        with pytest.raises(ConfigurationError):
            power_iterate(lambda x: x, 2, max_iterations=0)

    def test_default_tolerance_matches_paper(self):
        assert DEFAULT_TOLERANCE == 1e-12


class TestGrowStartVector:
    def test_preserves_old_coordinates_verbatim(self):
        previous = np.array([0.5, 0.3, 0.2])
        grown = grow_start_vector(previous, 5)
        assert grown.shape == (5,)
        np.testing.assert_array_equal(grown[:3], previous)
        # New papers get the previous mean entry (scale-consistent).
        assert grown[3] == pytest.approx(1.0 / 3)
        assert grown[4] == pytest.approx(1.0 / 3)

    def test_same_length_keeps_scale(self):
        # Unnormalised fixed points (CiteRank traffic) must survive
        # untouched; power_iterate renormalises stochastic starts.
        previous = np.array([2.0, 6.0])
        grown = grow_start_vector(previous, 2)
        assert np.allclose(grown, [2.0, 6.0])

    def test_is_a_valid_power_iterate_start(self):
        matrix = np.array([[0.9, 0.2], [0.1, 0.8]])
        start = grow_start_vector(np.array([1.0]), 2)
        result, info = power_iterate(
            lambda x: matrix @ x, 2, start=start, tol=1e-14
        )
        assert info.converged
        assert np.allclose(result, [2 / 3, 1 / 3], atol=1e-6)

    def test_rejects_shrinking(self):
        with pytest.raises(ConfigurationError, match="grown network"):
            grow_start_vector(np.ones(4) / 4, 3)

    def test_equal_length_is_accepted_not_rejected(self):
        # Regression: the docstring promises "length <= n".  An equal-
        # length vector must pass the check (it is the no-new-papers
        # delta case), and must come back verbatim.
        previous = np.array([0.25, 0.25, 0.5])
        grown = grow_start_vector(previous, 3)
        np.testing.assert_array_equal(grown, previous)

    def test_too_long_message_states_the_constraint(self):
        # Regression: the old message read "the grown network has only
        # {n} papers", which suggested equality was also an error.  The
        # message must state the actual violated constraint.
        with pytest.raises(
            ConfigurationError, match=r"exceeds.*must be <= 3"
        ):
            grow_start_vector(np.ones(4) / 4, 3)

    def test_rejects_negative_and_non_finite(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            grow_start_vector(np.array([0.5, -0.5]), 3)
        with pytest.raises(ConfigurationError, match="non-negative"):
            grow_start_vector(np.array([0.5, np.nan]), 3)

    def test_rejects_massless(self):
        with pytest.raises(ConfigurationError, match="no mass"):
            grow_start_vector(np.zeros(2), 3)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ConfigurationError, match="must be a vector"):
            grow_start_vector(np.ones((2, 2)), 5)
        with pytest.raises(ConfigurationError, match="positive"):
            grow_start_vector(np.ones(2), 0)


class TestGrowStartStack:
    def test_columns_match_grow_start_vector(self):
        a = np.array([0.5, 0.3, 0.2])
        b = np.array([2.0, 6.0, 4.0])
        stack = grow_start_stack([a, b], 5)
        assert stack.shape == (5, 2)
        assert stack.flags["C_CONTIGUOUS"]
        np.testing.assert_array_equal(stack[:, 0], grow_start_vector(a, 5))
        np.testing.assert_array_equal(stack[:, 1], grow_start_vector(b, 5))

    def test_none_column_gets_uniform_cold_start(self):
        stack = grow_start_stack([None, np.array([1.0, 1.0])], 4)
        np.testing.assert_array_equal(stack[:, 0], uniform_vector(4))
        np.testing.assert_array_equal(
            stack[:, 1], grow_start_vector(np.array([1.0, 1.0]), 4)
        )

    def test_single_column_degenerates_to_vector_form(self):
        previous = np.array([0.25, 0.75])
        stack = grow_start_stack([previous], 3)
        assert stack.shape == (3, 1)
        np.testing.assert_array_equal(
            stack[:, 0], grow_start_vector(previous, 3)
        )

    def test_empty_list_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            grow_start_stack([], 3)

    def test_shrinking_network_rejected_per_column(self):
        # One bad column fails the whole stack — a silent truncation
        # would hand the solver a start for the wrong network.
        good = np.array([0.5, 0.5])
        bad = np.ones(4) / 4
        with pytest.raises(ConfigurationError, match="exceeds"):
            grow_start_stack([good, bad], 3)

    def test_column_validation_applies(self):
        with pytest.raises(ConfigurationError, match="non-negative"):
            grow_start_stack([np.array([0.5, -0.5])], 3)
