"""Tests for checkpoint capture, persistence, and exact resume."""

from __future__ import annotations

import json
import os

import numpy as np
import pytest

from repro.errors import DataFormatError, StreamError
from repro.stream import Checkpoint, EventLog, StreamIngestor

pytestmark = pytest.mark.stream

METHODS = ("PR", "CC")


@pytest.fixture(scope="module")
def hepth_log(hepth_tiny) -> EventLog:
    return EventLog.from_network(hepth_tiny)


def _half_replayed(log, **kwargs) -> StreamIngestor:
    ingestor = StreamIngestor(
        log, METHODS, batch_size=64, bootstrap_size=64, **kwargs
    )
    ingestor.replay(max_batches=20)
    return ingestor


class TestCaptureAndLoad:
    def test_capture_before_bootstrap_raises(self, hepth_log, tmp_path):
        ingestor = StreamIngestor(hepth_log, METHODS)
        with pytest.raises(StreamError, match="bootstrap"):
            ingestor.checkpoint(str(tmp_path / "ckpt"))

    def test_round_trip_preserves_state(self, hepth_log, tmp_path):
        ingestor = _half_replayed(
            hepth_log, shards=3, watermark_years=2.5
        )
        directory = str(tmp_path / "ckpt")
        path = ingestor.checkpoint(directory)
        assert os.path.basename(path) == "checkpoint.json"
        state = Checkpoint.load(directory)
        assert state.offset == ingestor.offset
        assert state.batches_applied == ingestor.batches_applied
        assert state.batch_size == 64
        assert state.watermark_years == 2.5
        assert state.shards == 3
        assert state.partitioner == "hash"
        assert state.index_version == ingestor.index.version
        index = state.load_index(directory)
        for label in METHODS:
            np.testing.assert_array_equal(
                index.scores(label), ingestor.index.scores(label)
            )

    def test_load_missing_directory(self, tmp_path):
        with pytest.raises(DataFormatError, match="not a stream checkpoint"):
            Checkpoint.load(str(tmp_path / "nowhere"))

    def test_load_rejects_bad_version(self, hepth_log, tmp_path):
        directory = str(tmp_path / "ckpt")
        _half_replayed(hepth_log).checkpoint(directory)
        manifest = os.path.join(directory, "checkpoint.json")
        with open(manifest, encoding="utf-8") as handle:
            payload = json.load(handle)
        payload["checkpoint_format_version"] = 99
        with open(manifest, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(DataFormatError, match="version 99"):
            Checkpoint.load(directory)

    def test_load_rejects_torn_index(self, hepth_log, tmp_path):
        # Manifest and index disagree on the version: refuse to resume.
        directory = str(tmp_path / "ckpt")
        ingestor = _half_replayed(hepth_log)
        ingestor.checkpoint(directory)
        state = Checkpoint.load(directory)
        ingestor.replay(max_batches=5)
        ingestor.index.save(os.path.join(directory, state.index_file))
        with pytest.raises(DataFormatError, match="partially overwritten"):
            state.load_index(directory)

    def test_crash_between_index_and_manifest_keeps_old_checkpoint(
        self, hepth_log, tmp_path
    ):
        """The commit point is the manifest: a new index file landing
        without its manifest (a crash mid-save) must leave the previous
        checkpoint fully loadable."""
        from repro.stream.checkpoint import Checkpoint as Ckpt

        directory = str(tmp_path / "ckpt")
        ingestor = _half_replayed(hepth_log)
        ingestor.checkpoint(directory)
        before = Ckpt.load(directory)
        # Simulate the crash: the next checkpoint's index file is
        # written, the manifest rename never happens.
        ingestor.replay(max_batches=5)
        bound = Ckpt.capture(ingestor)
        ingestor.index.save(
            os.path.join(directory, bound.state.index_file)
        )
        after = Ckpt.load(directory)
        assert after == before
        after.load_index(directory)  # still loads the old state
        resumed = StreamIngestor.resume(directory, hepth_log)
        assert resumed.offset == before.offset

    def test_save_prunes_superseded_index_files(self, hepth_log, tmp_path):
        directory = str(tmp_path / "ckpt")
        ingestor = _half_replayed(hepth_log)
        ingestor.checkpoint(directory)
        ingestor.replay(max_batches=5)
        ingestor.checkpoint(directory)
        index_files = [
            name
            for name in os.listdir(directory)
            if name.startswith("index-v")
        ]
        assert index_files == [Checkpoint.load(directory).index_file]

    def test_incremental_digest_matches_log_digest(self, hepth_log):
        ingestor = _half_replayed(hepth_log)
        assert ingestor.prefix_digest() == hepth_log.digest(
            ingestor.offset
        )

    def test_load_rejects_malformed_manifest(self, hepth_log, tmp_path):
        directory = str(tmp_path / "ckpt")
        _half_replayed(hepth_log).checkpoint(directory)
        manifest = os.path.join(directory, "checkpoint.json")
        with open(manifest, encoding="utf-8") as handle:
            payload = json.load(handle)
        del payload["offset"]
        with open(manifest, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
        with pytest.raises(DataFormatError, match="malformed"):
            Checkpoint.load(directory)


class TestResume:
    def test_resume_is_bit_identical(self, hepth_log, tmp_path):
        uninterrupted = StreamIngestor(
            hepth_log, METHODS, batch_size=64, bootstrap_size=64
        )
        uninterrupted.replay()

        interrupted = _half_replayed(hepth_log)
        directory = str(tmp_path / "ckpt")
        interrupted.checkpoint(directory)
        resumed = StreamIngestor.resume(directory, hepth_log)
        assert resumed.offset == interrupted.offset
        assert resumed.batches_applied == interrupted.batches_applied
        resumed.replay()
        # Bit-identical *without* finalize: determinism of the batch
        # cuts plus exact float64 persistence of the warm starts.
        assert resumed.index.version == uninterrupted.index.version
        for label in METHODS:
            np.testing.assert_array_equal(
                resumed.index.scores(label),
                uninterrupted.index.scores(label),
            )
        assert (
            resumed.index.network.paper_ids
            == uninterrupted.index.network.paper_ids
        )

    def test_resume_rejects_wrong_log(self, hepth_log, tmp_path):
        from dataclasses import replace

        directory = str(tmp_path / "ckpt")
        _half_replayed(hepth_log).checkpoint(directory)
        # A structurally valid log whose prefix differs (the first
        # paper renamed) must be refused by the digest check.
        mutated = list(hepth_log.events)
        mutated[0] = replace(mutated[0], paper_id="IMPOSTOR")
        with pytest.raises(StreamError, match="digest"):
            StreamIngestor.resume(directory, EventLog(mutated))
        # A log shorter than the consumed prefix is refused outright.
        short = EventLog(list(hepth_log.events[:10]))
        with pytest.raises(StreamError, match="not the stream"):
            StreamIngestor.resume(directory, short)

    def test_resume_then_checkpoint_again(self, hepth_log, tmp_path):
        directory = str(tmp_path / "ckpt")
        _half_replayed(hepth_log).checkpoint(directory)
        resumed = StreamIngestor.resume(directory, hepth_log)
        resumed.replay(max_batches=5)
        resumed.checkpoint(directory)
        again = StreamIngestor.resume(directory, hepth_log)
        assert again.offset == resumed.offset
        report = again.replay()
        assert report.exhausted
