"""Unit tests for repro.eval.tuning (grid search)."""

import pytest

from repro.errors import EvaluationError
from repro.eval.metrics import NDCG, SpearmanRho
from repro.eval.tuning import evaluate_setting, tune_method, tune_methods


class TestEvaluateSetting:
    def test_single_setting(self, hepth_split):
        score = evaluate_setting(
            "RAM", {"gamma": 0.3}, hepth_split, SpearmanRho()
        )
        assert -1.0 <= score <= 1.0

    def test_deterministic(self, hepth_split):
        metric = NDCG(50)
        a = evaluate_setting("RAM", {"gamma": 0.5}, hepth_split, metric)
        b = evaluate_setting("RAM", {"gamma": 0.5}, hepth_split, metric)
        assert a == b


class TestTuneMethod:
    def test_best_is_argmax_of_sweep(self, hepth_split):
        grid = [{"gamma": g} for g in (0.1, 0.3, 0.5, 0.7, 0.9)]
        result = tune_method("RAM", grid, hepth_split, SpearmanRho())
        assert result.best_score == max(s.score for s in result.sweep)
        assert len(result.sweep) == 5

    def test_tie_keeps_first_setting(self, hepth_split):
        grid = [{"gamma": 0.4}, {"gamma": 0.4}]
        result = tune_method("RAM", grid, hepth_split, SpearmanRho())
        assert result.best is result.sweep[0]

    def test_empty_grid_rejected(self, hepth_split):
        with pytest.raises(EvaluationError, match="empty parameter grid"):
            tune_method("RAM", [], hepth_split, SpearmanRho())

    def test_result_metadata(self, hepth_split):
        result = tune_method(
            "RAM", [{"gamma": 0.2}], hepth_split, NDCG(10)
        )
        assert result.method == "RAM"
        assert result.metric == "ndcg@10"
        assert result.best_params == {"gamma": 0.2}

    def test_tuned_beats_or_equals_any_single_setting(self, hepth_split):
        grid = [{"gamma": round(0.1 * i, 1)} for i in range(1, 10)]
        result = tune_method("RAM", grid, hepth_split, SpearmanRho())
        fixed = evaluate_setting(
            "RAM", {"gamma": 0.6}, hepth_split, SpearmanRho()
        )
        assert result.best_score >= fixed


class TestTuneMethods:
    def test_multiple_methods(self, hepth_split):
        results = tune_methods(
            {
                "RAM": [{"gamma": 0.3}, {"gamma": 0.6}],
                "CR": [{"alpha": 0.5, "tau_dir": 2.0}],
            },
            hepth_split,
            SpearmanRho(),
        )
        assert set(results) == {"RAM", "CR"}
        assert results["CR"].best_params["tau_dir"] == 2.0
