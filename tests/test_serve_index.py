"""Unit tests for repro.serve.score_index (and the LRU cache)."""

import numpy as np
import pytest

from repro.baselines import warm_startable
from repro.errors import ConfigurationError, DataFormatError
from repro.io.serialize import save_network
from repro.serve import LRUCache, ScoreIndex


class TestScoreIndex:
    def test_add_method_solves_cold(self, toy):
        index = ScoreIndex(toy)
        entry = index.add_method("AR", alpha=0.2, beta=0.5, gamma=0.3)
        assert entry.label == "AR"
        assert not entry.warm_started
        assert entry.converged
        assert entry.iterations > 0
        assert entry.scores.shape == (toy.n_papers,)

    def test_scores_are_read_only(self, toy, tmp_path):
        index = ScoreIndex(toy)
        index.add_method("PR")
        with pytest.raises(ValueError, match="read-only"):
            index.scores("PR")[0] = 1.0
        path = str(tmp_path / "index.npz")
        index.save(path)
        loaded = ScoreIndex.load(path)
        with pytest.raises(ValueError, match="read-only"):
            loaded.scores("PR")[0] = 1.0

    def test_closed_form_method_has_zero_iterations(self, toy):
        index = ScoreIndex(toy)
        entry = index.add_method("CC")
        assert entry.iterations == 0
        assert entry.converged

    def test_label_is_case_insensitive(self, toy):
        index = ScoreIndex(toy)
        index.add_method("cc")
        assert "CC" in index
        assert "cc" in index
        assert index.scores("cc") is index.scores("CC")

    def test_duplicate_method_rejected(self, toy):
        index = ScoreIndex(toy)
        index.add_method("CC")
        with pytest.raises(ConfigurationError, match="already indexed"):
            index.add_method("CC")

    def test_unknown_method_lookup(self, toy):
        index = ScoreIndex(toy)
        with pytest.raises(ConfigurationError, match="not in the index"):
            index.scores("AR")

    def test_empty_network_rejected(self, two_dangling):
        with pytest.raises(ConfigurationError):
            ScoreIndex(two_dangling.subnetwork([]))

    def test_refresh_bumps_version_and_warm_starts(self, toy):
        index = ScoreIndex(toy)
        index.add_method("PR")
        index.add_method("CC")
        assert index.version == 0
        entries = index.refresh()
        assert index.version == 1
        assert entries["PR"].warm_started
        assert not entries["CC"].warm_started  # closed form has no start
        entries = index.refresh(warm=False)
        assert index.version == 2
        assert not entries["PR"].warm_started

    def test_refresh_rejects_shrinking_network(self, toy, chain):
        index = ScoreIndex(toy)
        index.add_method("CC")
        with pytest.raises(ConfigurationError, match="only grows"):
            index.refresh(chain)

    def test_refresh_keeps_params(self, toy):
        index = ScoreIndex(toy)
        index.add_method("PR", alpha=0.3)
        index.refresh()
        assert index.entry("PR").params == {"alpha": 0.3}

    def test_failed_refresh_leaves_index_unchanged(self, toy, monkeypatch):
        """A solve failure mid-refresh must not half-commit state."""
        import repro.serve.score_index as score_index_module
        from repro.errors import ConvergenceError

        index = ScoreIndex(toy)
        index.add_method("CC")
        index.add_method("PR")
        network_before = index.network
        scores_before = {
            label: index.scores(label).copy() for label in index.labels
        }

        real_make_method = score_index_module.make_method

        def failing_make_method(label, **params):
            method = real_make_method(label, **params)
            if label == "PR":
                def explode(network):
                    raise ConvergenceError(
                        "synthetic failure", iterations=1, residual=1.0
                    )
                # Opt the method out of the fused stack so the refresh
                # falls back to the (exploding) scalar solve.
                method.scores = explode
                method.fused_column = lambda network: None
            return method

        monkeypatch.setattr(
            score_index_module, "make_method", failing_make_method
        )
        extended = toy.extend(["N1"], [2006.0], [])
        with pytest.raises(ConvergenceError):
            index.refresh(extended)

        # Untouched: snapshot, version, and every score vector.
        assert index.network is network_before
        assert index.version == 0
        for label in index.labels:
            np.testing.assert_array_equal(
                index.scores(label), scores_before[label]
            )

    def test_warm_startable_registry_helper(self):
        assert warm_startable("AR")
        assert warm_startable("pr")
        assert warm_startable("CR")
        assert not warm_startable("CC")
        assert not warm_startable("RAM")
        with pytest.raises(ConfigurationError, match="unknown method"):
            warm_startable("nope")


class TestScoreIndexPersistence:
    def test_roundtrip(self, toy, tmp_path):
        path = str(tmp_path / "index.npz")
        index = ScoreIndex(toy)
        index.add_method("AR", alpha=0.2, beta=0.5, gamma=0.3)
        index.add_method("CC")
        index.refresh()
        index.save(path)

        loaded = ScoreIndex.load(path)
        assert loaded.version == index.version == 1
        assert loaded.labels == ("AR", "CC")
        assert loaded.network.paper_ids == toy.paper_ids
        for label in index.labels:
            np.testing.assert_allclose(
                loaded.scores(label), index.scores(label)
            )
            assert loaded.entry(label).params == index.entry(label).params
            assert loaded.entry(label).iterations == (
                index.entry(label).iterations
            )

    def test_loaded_index_can_refresh(self, toy, tmp_path):
        path = str(tmp_path / "index.npz")
        index = ScoreIndex(toy)
        index.add_method("PR")
        index.save(path)
        loaded = ScoreIndex.load(path)
        entries = loaded.refresh()
        assert entries["PR"].warm_started
        np.testing.assert_allclose(
            loaded.scores("PR"), index.scores("PR"), atol=1e-10
        )

    def test_missing_file(self, tmp_path):
        with pytest.raises(DataFormatError, match="not found"):
            ScoreIndex.load(str(tmp_path / "nope.npz"))

    def test_bare_network_file_rejected(self, toy, tmp_path):
        path = str(tmp_path / "net.npz")
        save_network(toy, path)
        with pytest.raises(DataFormatError, match="not a repro score index"):
            ScoreIndex.load(path)


class TestLRUCache:
    def test_hit_miss_and_eviction(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes a's recency
        cache.put("c", 3)  # evicts b, the least recently used
        assert cache.get("b") is None
        assert cache.get("a") == 1
        stats = cache.stats()
        assert stats.hits == 2
        assert stats.misses == 1
        assert stats.evictions == 1
        assert stats.size == 2
        assert 0 < stats.hit_rate < 1

    def test_clear_keeps_counters(self):
        cache = LRUCache(maxsize=4)
        cache.put("a", 1)
        cache.get("a")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats().hits == 1

    def test_put_refreshes_existing_key(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # refresh, no eviction
        cache.put("c", 3)  # evicts b
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_bad_maxsize(self):
        with pytest.raises(ConfigurationError):
            LRUCache(maxsize=0)


class TestLoadIntegrityValidation:
    """The load path must fail typed, never with a bare KeyError."""

    @staticmethod
    def _tampered(toy, tmp_path, mutate):
        """Save a valid index, rewrite its metadata through ``mutate``."""
        import json

        path = str(tmp_path / "index.npz")
        index = ScoreIndex(toy)
        index.add_method("CC")
        index.save(path)
        with np.load(path, allow_pickle=False) as archive:
            arrays = {name: archive[name] for name in archive.files}
        meta = json.loads(str(arrays["index_meta"][0]))
        mutate(meta, arrays)
        arrays["index_meta"] = np.asarray([json.dumps(meta)], dtype=np.str_)
        np.savez(path, **arrays)
        return path

    def test_missing_version_field(self, toy, tmp_path):
        from repro.errors import IndexIntegrityError

        path = self._tampered(
            toy, tmp_path, lambda meta, arrays: meta.pop("version")
        )
        with pytest.raises(IndexIntegrityError, match="malformed"):
            ScoreIndex.load(path)

    def test_negative_version(self, toy, tmp_path):
        from repro.errors import IndexIntegrityError

        def mutate(meta, arrays):
            meta["version"] = -3

        with pytest.raises(IndexIntegrityError, match="negative"):
            ScoreIndex.load(self._tampered(toy, tmp_path, mutate))

    def test_unknown_method_label(self, toy, tmp_path):
        from repro.errors import IndexIntegrityError

        def mutate(meta, arrays):
            meta["methods"][0]["label"] = "NOT-A-METHOD"

        with pytest.raises(IndexIntegrityError, match="unknown method"):
            ScoreIndex.load(self._tampered(toy, tmp_path, mutate))

    def test_duplicate_method_records(self, toy, tmp_path):
        from repro.errors import IndexIntegrityError

        def mutate(meta, arrays):
            meta["methods"].append(dict(meta["methods"][0]))

        with pytest.raises(IndexIntegrityError, match="twice"):
            ScoreIndex.load(self._tampered(toy, tmp_path, mutate))

    def test_declared_scores_missing(self, toy, tmp_path):
        from repro.errors import IndexIntegrityError

        def mutate(meta, arrays):
            del arrays["index_scores__CC"]

        with pytest.raises(IndexIntegrityError, match="missing"):
            ScoreIndex.load(self._tampered(toy, tmp_path, mutate))

    def test_undeclared_score_vector(self, toy, tmp_path):
        from repro.errors import IndexIntegrityError

        def mutate(meta, arrays):
            arrays["index_scores__PR"] = arrays["index_scores__CC"]

        with pytest.raises(IndexIntegrityError, match="not declared"):
            ScoreIndex.load(self._tampered(toy, tmp_path, mutate))

    def test_truncated_method_record(self, toy, tmp_path):
        from repro.errors import IndexIntegrityError

        def mutate(meta, arrays):
            del meta["methods"][0]["params"]

        with pytest.raises(IndexIntegrityError, match="malformed method"):
            ScoreIndex.load(self._tampered(toy, tmp_path, mutate))

    def test_integrity_error_is_a_data_format_error(self):
        from repro.errors import DataFormatError, IndexIntegrityError

        assert issubclass(IndexIntegrityError, DataFormatError)
