"""Asyncio tests for the request coalescer.

Each test drives a real event loop via ``asyncio.run`` (no plugin
needed): submits race each other, batches form naturally behind the
executor, and results must be bit-identical to direct service calls.
"""

import asyncio

import pytest

from repro.errors import ConfigurationError, GatewayError, GraphError
from repro.gateway import GatewayMetrics, RequestCoalescer
from repro.serve import (
    CompareQuery,
    PaperQuery,
    QueryEngine,
    RankingService,
    ScoreIndex,
    ShardedScoreIndex,
    TopKQuery,
)
from repro.synth import toy_network


def _make_service() -> RankingService:
    index = ScoreIndex(toy_network())
    index.add_method("CC")
    index.add_method("PR")
    return RankingService(index)


class TestCoalescing:
    def test_single_query_round_trip(self):
        service = _make_service()

        async def main():
            coalescer = RequestCoalescer(service)
            try:
                return await coalescer.submit(TopKQuery(method="CC", k=3))
            finally:
                await coalescer.close()

        version, page = asyncio.run(main())
        assert version == 0
        assert page == service.top_k("CC", k=3)

    def test_concurrent_submits_form_batches(self):
        service = _make_service()
        metrics = GatewayMetrics()
        queries = [
            TopKQuery(method="CC", k=3),
            TopKQuery(method="PR", k=2),
            PaperQuery(paper_id="A"),
            CompareQuery(methods=("CC", "PR"), k=4),
        ] * 4

        async def main():
            coalescer = RequestCoalescer(service, metrics=metrics)
            try:
                return await asyncio.gather(
                    *(coalescer.submit(query) for query in queries)
                )
            finally:
                await coalescer.close()

        outcomes = asyncio.run(main())
        assert len(outcomes) == len(queries)
        # Everything answered at the single live version...
        assert {version for version, _ in outcomes} == {0}
        # ...bit-identical to the direct paths...
        assert outcomes[0][1] == service.top_k("CC", k=3)
        assert outcomes[2][1] == service.paper("A")
        assert outcomes[3][1] == service.compare(("CC", "PR"), k=4)
        # ...and the 16 concurrent submits coalesced into fewer
        # engine batches (the first drain takes 1, the rest pile up).
        assert metrics.batch_sizes.batches < len(queries)
        assert metrics.batch_sizes.requests == len(queries)

    def test_per_query_error_attribution(self):
        service = _make_service()
        queries = [
            TopKQuery(method="CC", k=2),
            PaperQuery(paper_id="NO-SUCH-PAPER"),
            TopKQuery(method="NOPE", k=2),
            TopKQuery(method="PR", k=2),
        ]

        async def main():
            coalescer = RequestCoalescer(service)
            try:
                return await asyncio.gather(
                    *(coalescer.submit(query) for query in queries),
                    return_exceptions=True,
                )
            finally:
                await coalescer.close()

        good_0, bad_paper, bad_method, good_3 = asyncio.run(main())
        assert good_0[1] == service.top_k("CC", k=2)
        assert isinstance(bad_paper, GraphError)
        assert isinstance(bad_method, ConfigurationError)
        assert good_3[1] == service.top_k("PR", k=2)

    def test_engine_backend_without_cache(self):
        index = ScoreIndex(toy_network())
        index.add_method("CC")
        engine = QueryEngine(
            ShardedScoreIndex.from_index(index, n_shards=2)
        )

        async def main():
            coalescer = RequestCoalescer(engine)
            try:
                return await coalescer.submit(TopKQuery(method="CC", k=3))
            finally:
                await coalescer.close()

        version, page = asyncio.run(main())
        assert version == 0
        assert page == engine.top_k("CC", k=3)

    def test_submit_after_close_is_gateway_error(self):
        service = _make_service()

        async def main():
            coalescer = RequestCoalescer(service)
            await coalescer.start()
            await coalescer.close()
            with pytest.raises(GatewayError, match="draining"):
                await coalescer.submit(TopKQuery(method="CC", k=1))

        asyncio.run(main())

    def test_close_drains_pending_requests(self):
        service = _make_service()

        async def main():
            coalescer = RequestCoalescer(service)
            await coalescer.start()
            futures = [
                asyncio.ensure_future(
                    coalescer.submit(TopKQuery(method="CC", k=2))
                )
                for _ in range(8)
            ]
            await asyncio.sleep(0)      # let submits park
            await coalescer.close()     # must answer them, not drop
            return await asyncio.gather(*futures)

        outcomes = asyncio.run(main())
        assert len(outcomes) == 8
        assert all(
            page == service.top_k("CC", k=2) for _, page in outcomes
        )

    def test_exclusively_serialises_with_batches(self):
        """An update applied via exclusively() is atomic to readers:
        every response version matches the batch's actual state."""
        from repro.serve import NetworkDelta

        service = _make_service()
        delta = NetworkDelta(
            papers=(("NEW", 2005.0),), citations=(("NEW", "A"),)
        )

        async def main():
            coalescer = RequestCoalescer(service)
            await coalescer.start()
            reads = [
                asyncio.ensure_future(
                    coalescer.submit(TopKQuery(method="CC", k=3))
                )
                for _ in range(6)
            ]
            await coalescer.exclusively(lambda: service.update(delta))
            late = await coalescer.submit(TopKQuery(method="CC", k=3))
            await coalescer.close()
            return await asyncio.gather(*reads), late

        outcomes, late = asyncio.run(main())
        for version, page in outcomes:
            assert page.version == version
            assert version in (0, 1)
        late_version, late_page = late
        assert late_version == 1
        assert late_page == service.top_k("CC", k=3)

    def test_bad_max_batch_rejected(self):
        with pytest.raises(GatewayError):
            RequestCoalescer(_make_service(), max_batch=0)
