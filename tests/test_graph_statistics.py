"""Unit tests for repro.graph.statistics."""

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph.statistics import (
    citation_age_distribution,
    citations_per_year,
    summarize,
    top_cited,
    yearly_citations,
)


class TestCitationAgeDistribution:
    def test_chain_ages(self, chain):
        # Every citation is exactly 1 year after the cited paper.
        distribution = citation_age_distribution(chain, max_age=5)
        assert distribution[1] == pytest.approx(1.0)
        assert distribution.sum() == pytest.approx(1.0)

    def test_partial_mass_beyond_max_age(self, star):
        # Star citations arrive 1..5 years after HUB; cap at 3.
        distribution = citation_age_distribution(star, max_age=3)
        assert distribution.sum() == pytest.approx(3 / 5)

    def test_empty_network_raises(self, two_dangling):
        with pytest.raises(GraphError):
            citation_age_distribution(two_dangling)

    def test_synthetic_distribution_decays(self, hepth_tiny):
        """Figure 1a shape: mass concentrates in the first few years."""
        distribution = citation_age_distribution(hepth_tiny, max_age=10)
        assert distribution.sum() > 0.8  # most citations within 10 years
        assert distribution[:4].sum() > distribution[4:].sum()

    def test_length(self, chain):
        assert citation_age_distribution(chain, max_age=7).shape == (8,)


class TestYearlyCitations:
    def test_star_trajectory(self, star):
        years, counts = yearly_citations(star, "HUB")
        assert years.tolist() == [2000, 2001, 2002, 2003, 2004, 2005]
        assert counts.tolist() == [0, 1, 1, 1, 1, 1]

    def test_accepts_index_or_id(self, star):
        by_id = yearly_citations(star, "HUB")
        by_index = yearly_citations(star, star.index_of("HUB"))
        assert np.array_equal(by_id[1], by_index[1])

    def test_custom_year_range(self, star):
        years, counts = yearly_citations(
            star, "HUB", first_year=2002, last_year=2004
        )
        assert years.tolist() == [2002, 2003, 2004]
        assert counts.tolist() == [1, 1, 1]

    def test_empty_range_rejected(self, star):
        with pytest.raises(GraphError, match="empty year range"):
            yearly_citations(star, "HUB", first_year=2005, last_year=2001)

    def test_out_of_range_paper_rejected(self, star):
        with pytest.raises(GraphError):
            yearly_citations(star, 99)


class TestCitationsPerYear:
    def test_counts_sum_to_edges(self, toy):
        _, counts = citations_per_year(toy)
        assert counts.sum() == toy.n_citations

    def test_empty_raises(self, two_dangling):
        with pytest.raises(GraphError):
            citations_per_year(two_dangling)


class TestTopCited:
    def test_orders_by_in_degree(self, toy):
        top = top_cited(toy, 2)
        ids = {toy.id_of(int(i)) for i in top}
        # A (3 citations) and one of C/D/E/F (2 each, tie -> lowest index = C).
        assert ids == {"A", "C"}

    def test_recent_window_changes_ranking(self, toy):
        # Only citations made after 2000: F and E lead.
        top = top_cited(toy, 2, since=2000.0)
        ids = {toy.id_of(int(i)) for i in top}
        assert ids == {"E", "F"}

    def test_k_zero(self, toy):
        assert top_cited(toy, 0).size == 0

    def test_negative_k_rejected(self, toy):
        with pytest.raises(GraphError):
            top_cited(toy, -1)


class TestSummarize:
    def test_toy_summary(self, toy):
        summary = summarize(toy)
        assert summary.n_papers == 8
        assert summary.n_citations == 13
        assert summary.n_authors == 5
        assert summary.n_venues == 3
        assert summary.first_year == 1990.0
        assert summary.last_year == 2003.0
        assert summary.dangling_fraction == pytest.approx(1 / 8)

    def test_as_rows_shape(self, toy):
        rows = summarize(toy).as_rows()
        assert all(len(row) == 2 for row in rows)
        assert len(rows) == 8

    def test_empty_raises(self):
        from repro.graph.citation_network import CitationNetwork

        with pytest.raises(GraphError):
            summarize(CitationNetwork([], [], [], []))
