"""Tests of the machine-readable benchmark harness (repro.bench)."""

from __future__ import annotations

import json
import os

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    BenchConfig,
    list_scenarios,
    run_scenario,
    scenario_help,
    time_callable,
)
from repro.errors import ConfigurationError

#: Every scenario the harness must know about, per the bench catalogue.
EXPECTED_SCENARIOS = {
    "figure4",
    "tuning",
    "serve_delta",
    "serve_batch",
    "split",
    "operator",
    "stream",
}


class TestTimeCallable:
    def test_runs_warmup_plus_repeats(self):
        calls = []
        stats, result = time_callable(
            lambda: calls.append(1) or len(calls), warmup=2, repeats=3
        )
        assert len(calls) == 5
        assert len(stats.wall_times) == 3
        assert stats.warmup == 2
        assert result == 5  # the last timed call's return value

    def test_stats_derive_from_wall_times(self):
        stats, _ = time_callable(lambda: None, repeats=3)
        assert stats.best == min(stats.wall_times)
        assert stats.mean == pytest.approx(
            sum(stats.wall_times) / len(stats.wall_times)
        )

    def test_rejects_bad_counts(self):
        with pytest.raises(ConfigurationError):
            time_callable(lambda: None, repeats=0)
        with pytest.raises(ConfigurationError):
            time_callable(lambda: None, warmup=-1)


class TestRegistry:
    def test_expected_scenarios_registered(self):
        assert EXPECTED_SCENARIOS <= set(list_scenarios())

    def test_help_has_descriptions(self):
        help_map = scenario_help()
        for name in EXPECTED_SCENARIOS:
            assert help_map[name]

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown bench"):
            run_scenario("no-such-scenario")


class TestBenchJson:
    @pytest.fixture(scope="class")
    def figure4_result(self):
        """One smoke figure4 run shared by every schema assertion."""
        return run_scenario("figure4", jobs=2, size="tiny", smoke=True)

    def test_emits_valid_json_file(self, figure4_result, tmp_path):
        path = figure4_result.write(str(tmp_path))
        assert os.path.basename(path) == "BENCH_figure4.json"
        with open(path, encoding="utf-8") as handle:
            document = json.load(handle)
        assert document["schema_version"] == SCHEMA_VERSION
        assert document["scenario"] == "figure4"

    def test_schema_core_fields(self, figure4_result):
        document = figure4_result.as_dict()
        assert document["config"]["jobs"] == 2
        assert document["config"]["smoke"] is True
        assert document["machine"]["cpu_count"] >= 1
        assert document["created_utc"].endswith("Z")
        assert document["elapsed_seconds"] > 0

    def test_payload_has_required_measurements(self, figure4_result):
        payload = figure4_result.payload
        # The acceptance contract: wall time, iterations, speedup vs
        # serial, dataset size.
        assert payload["serial"]["wall_times_seconds"]
        assert payload["parallel"]["wall_times_seconds"]
        assert payload["parallel"]["jobs"] == 2
        assert payload["speedup_vs_serial"] > 0
        assert payload["evaluations_per_run"] > 0
        assert payload["dataset"]["n_papers"] > 0
        assert payload["dataset"]["n_citations"] > 0

    def test_parallel_run_has_identical_rankings(self, figure4_result):
        assert figure4_result.payload["identical_rankings"] is True
        assert figure4_result.payload["winner_at_ratio"]

    def test_scenario_defaults_respected(self):
        config = BenchConfig(scenario="x")
        assert config.jobs == 1
        assert config.repeats == 1
        assert config.warmup == 0


class TestCheapScenarios:
    def test_split_scenario(self, tmp_path):
        result = run_scenario(
            "split", size="tiny", smoke=True, repeats=1, warmup=0
        )
        assert result.payload["splits_per_second"] > 0
        path = result.write(str(tmp_path))
        assert os.path.exists(path)

    def test_operator_scenario(self):
        result = run_scenario(
            "operator", size="tiny", smoke=True, repeats=1, warmup=0
        )
        assert result.payload["applies_per_second"] > 0
        assert result.payload["nnz"] > 0

    def test_serve_delta_scenario(self):
        result = run_scenario(
            "serve_delta", size="tiny", smoke=True, repeats=1, warmup=0
        )
        payload = result.payload
        assert payload["delta"]["n_new_papers"] > 0
        assert payload["warm"]["best_seconds"] > 0
        assert payload["cold"]["best_seconds"] > 0
        # This scenario compares warm vs cold re-solves — it must not
        # masquerade as a parallel-vs-serial measurement.
        assert "speedup_warm_vs_cold" in payload
        assert "speedup_vs_serial" not in payload
        # Warm starts must never need more iterations than cold solves.
        for label, warm_iterations in payload["warm"]["iterations"].items():
            assert warm_iterations <= payload["cold"]["iterations"][label]
