"""Unit and property tests for repro.serve.delta.

The headline property (ISSUE acceptance): after applying a delta with
warm-started re-solves, every score vector matches a cold-start full
recompute on the extended network to within ``DEFAULT_TOLERANCE`` —
Theorem 1 makes the fixed point start-independent, so warm starts may
only change iteration counts, never results.
"""

import json

import numpy as np
import pytest

from repro.core.power_iteration import DEFAULT_TOLERANCE
from repro.errors import ConfigurationError, DataFormatError, GraphError
from repro.graph.temporal import chronological_order
from repro.serve import (
    DeltaUpdater,
    NetworkDelta,
    ScoreIndex,
    delta_between,
)
from repro.synth.profiles import generate_dataset


@pytest.fixture
def toy_delta():
    return NetworkDelta(
        papers=(("N1", 2006.0), ("N2", 2006.5)),
        citations=(("N1", "A"), ("N1", "B"), ("N2", "N1"), ("N2", "A")),
    )


class TestNetworkDelta:
    def test_counts(self, toy_delta):
        assert toy_delta.n_papers == 2
        assert toy_delta.n_citations == 4

    def test_json_roundtrip(self, toy_delta, tmp_path):
        path = tmp_path / "delta.json"
        path.write_text(toy_delta.to_json(), encoding="utf-8")
        loaded = NetworkDelta.from_json_file(str(path))
        assert loaded == toy_delta

    def test_malformed_json_rejected(self, tmp_path):
        path = tmp_path / "delta.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(DataFormatError, match="invalid JSON"):
            NetworkDelta.from_json_file(str(path))

    def test_missing_fields_rejected(self):
        with pytest.raises(DataFormatError, match="malformed"):
            NetworkDelta.from_mapping({"papers": [{"id": "x"}]})

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(DataFormatError, match="cannot read"):
            NetworkDelta.from_json_file(str(tmp_path / "nope.json"))


class TestDeltaBetween:
    def test_replays_the_newest_slice(self):
        full = generate_dataset("hep-th", n_papers=300, seed=9)
        order = chronological_order(full)
        base = full.subnetwork(order[:260])
        delta = delta_between(base, full)
        assert delta.n_papers == 40
        extended = DeltaUpdater(ScoreIndex(base)).extend_network(delta)
        assert extended.n_papers == full.n_papers
        assert set(extended.paper_ids) == set(full.paper_ids)
        assert extended.n_citations == full.n_citations

    def test_base_must_be_subset(self, toy, chain):
        # toy has papers E..H that the 4-paper chain lacks.
        with pytest.raises(ConfigurationError, match="absent"):
            delta_between(toy, chain)

    def test_inexpressible_edges_rejected(self, toy):
        # A retroactive reference: an existing paper of `full` cites the
        # new paper, which no delta (new papers + their references) can
        # express.  toy's H is isolated, so dropping it keeps all edges.
        base = toy.subnetwork(
            [i for i in range(toy.n_papers) if toy.id_of(i) != "H"]
        )
        full = base.extend(["H"], [2005.0], [("A", "H")])
        with pytest.raises(ConfigurationError, match="induced prefix"):
            delta_between(base, full)


class TestDeltaUpdater:
    def test_apply_extends_and_bumps_version(self, toy, toy_delta):
        index = ScoreIndex(toy)
        index.add_method("CC")
        report = DeltaUpdater(index).apply(toy_delta)
        assert report.version == 1
        assert report.n_new_papers == 2
        assert report.n_new_citations == 4
        assert report.n_papers == toy.n_papers + 2
        assert index.network.index_of("N1") == toy.n_papers
        # CC scores reflect the new citations: A gained two.
        assert index.scores("CC")[toy.index_of("A")] == toy.in_degree[
            toy.index_of("A")
        ] + 2

    def test_empty_delta_rejected(self, toy):
        index = ScoreIndex(toy)
        updater = DeltaUpdater(index)
        with pytest.raises(ConfigurationError, match="empty delta"):
            updater.apply(NetworkDelta(papers=(), citations=()))

    def test_citation_from_existing_paper_rejected(self, toy):
        index = ScoreIndex(toy)
        delta = NetworkDelta(
            papers=(("N1", 2006.0),), citations=(("A", "N1"),)
        )
        with pytest.raises(ConfigurationError, match="cannot gain"):
            DeltaUpdater(index).apply(delta)

    def test_missing_reference_policies(self, toy):
        delta = NetworkDelta(
            papers=(("N1", 2006.0),), citations=(("N1", "nope"),)
        )
        skip = ScoreIndex(toy)
        skip.add_method("CC")
        report = DeltaUpdater(skip, missing_references="skip").apply(delta)
        assert report.n_new_citations == 0
        strict = ScoreIndex(toy)
        with pytest.raises(GraphError, match="unknown"):
            DeltaUpdater(strict, missing_references="error").apply(delta)

    def test_warm_entries_marked(self, toy, toy_delta):
        index = ScoreIndex(toy)
        index.add_method("PR")
        index.add_method("CC")
        report = DeltaUpdater(index).apply(toy_delta)
        assert report.entries["PR"].warm_started
        assert not report.entries["CC"].warm_started

    def test_cold_mode(self, toy, toy_delta):
        index = ScoreIndex(toy)
        index.add_method("PR")
        report = DeltaUpdater(index, warm=False).apply(toy_delta)
        assert not report.entries["PR"].warm_started


class TestWarmStartMatchesColdRecompute:
    """The acceptance property, for AttRank and PageRank (CiteRank —
    whose fixed point is unnormalised — rides along as a regression
    test for the scale-preserving start)."""

    METHOD_PARAMS = {
        "AR": dict(
            alpha=0.5, beta=0.3, gamma=0.2, attention_window=3,
            decay_rate=-0.5,
        ),
        "PR": dict(alpha=0.5),
        "CR": dict(alpha=0.5, tau_dir=2.0),
    }

    @pytest.mark.parametrize("label", sorted(METHOD_PARAMS))
    @pytest.mark.parametrize("seed,n_delta", [(1, 5), (2, 20), (3, 60)])
    def test_warm_equals_cold_within_tolerance(self, label, seed, n_delta):
        full = generate_dataset("hep-th", n_papers=400, seed=seed)
        order = chronological_order(full)
        base = full.subnetwork(order[: 400 - n_delta])

        index = ScoreIndex(base)
        index.add_method(label, **self.METHOD_PARAMS[label])
        report = DeltaUpdater(index).apply(delta_between(base, full))
        assert report.entries[label].warm_started
        assert report.entries[label].converged

        cold = ScoreIndex(full)
        cold.add_method(label, **self.METHOD_PARAMS[label])

        # Warm and cold solves land on the same fixed point: the largest
        # per-paper deviation stays below the paper's epsilon.
        deviation = float(
            np.abs(index.scores(label) - cold.scores(label)).max()
        )
        assert deviation <= DEFAULT_TOLERANCE

        # And therefore identical rankings at the top.
        warm_top = np.argsort(-index.scores(label))[:25]
        cold_top = np.argsort(-cold.scores(label))[:25]
        assert warm_top.tolist() == cold_top.tolist()

    def test_warm_start_never_needs_more_iterations_much(self):
        """Small deltas converge in fewer iterations than cold starts."""
        full = generate_dataset("dblp", n_papers=1000, seed=4)
        order = chronological_order(full)
        base = full.subnetwork(order[:995])
        index = ScoreIndex(base)
        index.add_method("PR")
        report = DeltaUpdater(index).apply(delta_between(base, full))
        cold = ScoreIndex(full)
        cold.add_method("PR")
        assert report.entries["PR"].iterations < cold.entry("PR").iterations
