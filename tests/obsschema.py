"""Strict validators for the deep-observability JSON documents.

Test helper in the spirit of ``expfmt.py``: the gateway tests and the
CI obs-deep smoke job feed live ``/v1/profile``, ``/v1/slo``, and
``/v1/metrics/history`` responses through these, and any malformed
field, broken invariant, or type drift raises :class:`ObsSchemaError`
naming the offending path.  Strictness is the point — a 200 with JSON
in it is not a schema.
"""

from __future__ import annotations

import math
from typing import Any, Mapping


class ObsSchemaError(ValueError):
    """The document violates the declared schema."""


def _fail(path: str, message: str) -> None:
    raise ObsSchemaError(f"{path}: {message}")


def _want(
    document: Mapping[str, Any], path: str, key: str, kinds: tuple
) -> Any:
    if key not in document:
        _fail(f"{path}.{key}", "missing")
    value = document[key]
    if not isinstance(value, kinds) or (
        # bool is an int subclass; reject it unless bool was asked for.
        isinstance(value, bool)
        and bool not in kinds
    ):
        _fail(
            f"{path}.{key}",
            f"expected {'/'.join(k.__name__ for k in kinds)}, "
            f"got {type(value).__name__}",
        )
    return value


def _finite(value: float, path: str) -> float:
    if not math.isfinite(value):
        _fail(path, f"not finite: {value!r}")
    return float(value)


# ----------------------------------------------------------------------
# /v1/profile (format=json)
# ----------------------------------------------------------------------
def validate_profile(document: Mapping[str, Any]) -> None:
    """Validate a ``/v1/profile`` JSON rendering (single or fleet)."""
    path = "profile"
    enabled = _want(document, path, "enabled", (bool,))
    if not enabled:
        return  # the disabled document only promises "enabled": false
    _want(document, path, "running", (bool,))
    hz = _finite(_want(document, path, "hz", (int, float)), f"{path}.hz")
    if hz <= 0:
        _fail(f"{path}.hz", f"must be > 0, got {hz}")
    samples_total = _want(document, path, "samples_total", (int,))
    dropped = _want(document, path, "dropped_stacks", (int,))
    if samples_total < 0 or dropped < 0:
        _fail(f"{path}.samples_total", "negative count")
    by_phase = _want(document, path, "by_phase", (dict,))
    phase_sum = 0
    for phase, count in by_phase.items():
        if not isinstance(phase, str) or not phase:
            _fail(f"{path}.by_phase", f"bad phase key {phase!r}")
        if not isinstance(count, int) or count < 0:
            _fail(f"{path}.by_phase.{phase}", f"bad count {count!r}")
        phase_sum += count
    if phase_sum + dropped != samples_total:
        _fail(
            f"{path}.by_phase",
            f"phases sum to {phase_sum} + {dropped} dropped, "
            f"samples_total says {samples_total}",
        )
    stacks = _want(document, path, "stacks", (list,))
    for i, stack in enumerate(stacks):
        spath = f"{path}.stacks[{i}]"
        if not isinstance(stack, dict):
            _fail(spath, "not an object")
        phase = _want(stack, spath, "phase", (str,))
        if phase not in by_phase:
            _fail(spath, f"phase {phase!r} missing from by_phase")
        frames = _want(stack, spath, "frames", (list,))
        for frame in frames:
            if not isinstance(frame, str) or not frame:
                _fail(f"{spath}.frames", f"bad frame {frame!r}")
        count = _want(stack, spath, "count", (int,))
        if count < 1:
            _fail(f"{spath}.count", f"must be >= 1, got {count}")
    _want(document, path, "truncated", (bool,))
    hot = _want(document, path, "hot_requests", (list,))
    for i, entry in enumerate(hot):
        hpath = f"{path}.hot_requests[{i}]"
        if not isinstance(entry, dict):
            _fail(hpath, "not an object")
        _want(entry, hpath, "request_id", (str,))
        samples = _want(entry, hpath, "samples", (int,))
        if samples < 1:
            _fail(f"{hpath}.samples", f"must be >= 1, got {samples}")


def validate_collapsed(text: str) -> int:
    """Validate folded-stack text; returns the number of stack lines."""
    lines = [line for line in text.splitlines() if line]
    for line in lines:
        folded, _, count = line.rpartition(" ")
        if not folded:
            _fail("collapsed", f"no frames in line {line!r}")
        if not count.isdigit() or int(count) < 1:
            _fail("collapsed", f"bad count in line {line!r}")
    return len(lines)


# ----------------------------------------------------------------------
# /v1/slo
# ----------------------------------------------------------------------
def validate_slo(document: Mapping[str, Any]) -> None:
    """Validate a ``/v1/slo`` document (single-process or fleet)."""
    path = "slo"
    _finite(
        _want(document, path, "evaluated_unix", (int, float)),
        f"{path}.evaluated_unix",
    )
    windows = _want(document, path, "windows", (list,))
    if not windows or not all(
        isinstance(w, str) and w for w in windows
    ):
        _fail(f"{path}.windows", f"bad window labels {windows!r}")
    objectives = _want(document, path, "objectives", (list,))
    if not objectives:
        _fail(f"{path}.objectives", "empty")
    any_firing = False
    for i, objective in enumerate(objectives):
        opath = f"{path}.objectives[{i}]"
        if not isinstance(objective, dict):
            _fail(opath, "not an object")
        _want(objective, opath, "name", (str,))
        kind = _want(objective, opath, "kind", (str,))
        if kind not in ("availability", "latency"):
            _fail(f"{opath}.kind", f"unknown kind {kind!r}")
        target = _finite(
            _want(objective, opath, "objective", (int, float)),
            f"{opath}.objective",
        )
        if not 0.0 < target < 1.0:
            _fail(f"{opath}.objective", f"outside (0, 1): {target}")
        budget = _finite(
            _want(objective, opath, "error_budget", (int, float)),
            f"{opath}.error_budget",
        )
        if abs(budget - (1.0 - target)) > 1e-9:
            _fail(f"{opath}.error_budget", "!= 1 - objective")
        if kind == "latency":
            threshold = _finite(
                _want(
                    objective, opath, "threshold_seconds", (int, float)
                ),
                f"{opath}.threshold_seconds",
            )
            if threshold <= 0:
                _fail(f"{opath}.threshold_seconds", "must be > 0")
        total = _finite(
            _want(objective, opath, "total", (int, float)),
            f"{opath}.total",
        )
        good = _finite(
            _want(objective, opath, "good", (int, float)),
            f"{opath}.good",
        )
        if good < 0 or total < 0 or good > total:
            _fail(opath, f"bad good/total pair {good}/{total}")
        compliance = _finite(
            _want(objective, opath, "compliance", (int, float)),
            f"{opath}.compliance",
        )
        if not 0.0 <= compliance <= 1.0:
            _fail(f"{opath}.compliance", f"outside [0, 1]: {compliance}")
        if total:
            if abs(compliance - good / total) > 1e-9:
                _fail(f"{opath}.compliance", "!= good / total")
        elif compliance != 1.0:
            _fail(f"{opath}.compliance", "no traffic must read 1.0")
        consumed = _finite(
            _want(objective, opath, "budget_consumed", (int, float)),
            f"{opath}.budget_consumed",
        )
        if not 0.0 <= consumed <= 1.0:
            _fail(
                f"{opath}.budget_consumed", f"outside [0, 1]: {consumed}"
            )
        burns = _want(objective, opath, "burn_rates", (dict,))
        if sorted(burns) != sorted(windows):
            _fail(
                f"{opath}.burn_rates",
                f"windows {sorted(burns)} != declared {sorted(windows)}",
            )
        for window, burn in burns.items():
            if (
                not isinstance(burn, (int, float))
                or isinstance(burn, bool)
                or not math.isfinite(burn)
                or burn < 0
            ):
                _fail(f"{opath}.burn_rates.{window}", f"bad burn {burn!r}")
        alerts = _want(objective, opath, "alerts", (list,))
        if not alerts:
            _fail(f"{opath}.alerts", "empty")
        alert_firing = False
        for j, alert in enumerate(alerts):
            apath = f"{opath}.alerts[{j}]"
            if not isinstance(alert, dict):
                _fail(apath, "not an object")
            severity = _want(alert, apath, "severity", (str,))
            if severity not in ("page", "ticket"):
                _fail(f"{apath}.severity", f"unknown {severity!r}")
            short = _want(alert, apath, "short_window", (str,))
            long = _want(alert, apath, "long_window", (str,))
            if short not in windows or long not in windows:
                _fail(apath, "alert windows missing from declared set")
            factor = _finite(
                _want(alert, apath, "factor", (int, float)),
                f"{apath}.factor",
            )
            short_burn = _finite(
                _want(alert, apath, "short_burn", (int, float)),
                f"{apath}.short_burn",
            )
            long_burn = _finite(
                _want(alert, apath, "long_burn", (int, float)),
                f"{apath}.long_burn",
            )
            firing = _want(alert, apath, "firing", (bool,))
            if firing != (
                short_burn >= factor and long_burn >= factor
            ):
                _fail(f"{apath}.firing", "inconsistent with burns")
            alert_firing = alert_firing or firing
        firing = _want(objective, opath, "firing", (bool,))
        if firing != alert_firing:
            _fail(f"{opath}.firing", "inconsistent with alerts")
        any_firing = any_firing or firing
    firing = _want(document, path, "firing", (bool,))
    if firing != any_firing:
        _fail(f"{path}.firing", "inconsistent with objectives")


# ----------------------------------------------------------------------
# /v1/metrics/history
# ----------------------------------------------------------------------
def validate_history(document: Mapping[str, Any]) -> None:
    """Validate a ``/v1/metrics/history`` document."""
    path = "history"
    family = document.get("family")
    if family is not None and not isinstance(family, str):
        _fail(f"{path}.family", f"expected str or null, got {family!r}")
    _finite(
        _want(document, path, "interval_seconds", (int, float)),
        f"{path}.interval_seconds",
    )
    capacity = _want(document, path, "capacity", (int,))
    if capacity < 1:
        _fail(f"{path}.capacity", f"must be >= 1, got {capacity}")
    scrapes = _want(document, path, "scrapes_total", (int,))
    if scrapes < 0:
        _fail(f"{path}.scrapes_total", "negative")
    families = _want(document, path, "families", (list,))
    for name in families:
        if not isinstance(name, str) or not name:
            _fail(f"{path}.families", f"bad family name {name!r}")
    points = _want(document, path, "points", (list,))
    total = _want(document, path, "points_total", (int,))
    if len(points) > total:
        _fail(
            f"{path}.points",
            f"{len(points)} returned but points_total says {total}",
        )
    if len(points) > capacity:
        _fail(f"{path}.points", "more points than capacity")
    previous_ts: float | None = None
    for i, point in enumerate(points):
        ppath = f"{path}.points[{i}]"
        if not isinstance(point, dict):
            _fail(ppath, "not an object")
        ts = _finite(
            _want(point, ppath, "ts", (int, float)), f"{ppath}.ts"
        )
        if previous_ts is not None and ts < previous_ts:
            _fail(f"{ppath}.ts", f"out of order: {ts} < {previous_ts}")
        previous_ts = ts
        series = _want(point, ppath, "series", (dict,))
        for key, value in series.items():
            if not isinstance(key, str) or not key:
                _fail(f"{ppath}.series", f"bad series key {key!r}")
            if family is not None and not key.startswith(family):
                _fail(
                    f"{ppath}.series",
                    f"series {key!r} outside family {family!r}",
                )
            if (
                not isinstance(value, (int, float))
                or isinstance(value, bool)
                or not math.isfinite(value)
            ):
                _fail(f"{ppath}.series.{key}", f"bad value {value!r}")
