"""Unit tests for repro.graph.matrix (the stochastic operator S)."""

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph.matrix import (
    StochasticOperator,
    column_stochastic,
    is_column_stochastic,
)


class TestColumnStochastic:
    def test_normalises_columns(self):
        raw = sp.csr_matrix(np.array([[2.0, 0.0], [2.0, 3.0]]))
        result = column_stochastic(raw).toarray()
        assert np.allclose(result[:, 0], [0.5, 0.5])
        assert np.allclose(result[:, 1], [0.0, 1.0])

    def test_zero_columns_left_alone(self):
        raw = sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 1.0]]))
        result = column_stochastic(raw).toarray()
        assert np.allclose(result[:, 0], 0.0)

    def test_rejects_non_square(self):
        with pytest.raises(GraphError, match="square"):
            column_stochastic(sp.csr_matrix(np.ones((2, 3))))

    def test_rejects_negative(self):
        with pytest.raises(GraphError, match="non-negative"):
            column_stochastic(sp.csr_matrix(np.array([[-1.0]])))


class TestIsColumnStochastic:
    def test_accepts_stochastic(self):
        matrix = sp.csr_matrix(np.array([[0.5, 1.0], [0.5, 0.0]]))
        assert is_column_stochastic(matrix)

    def test_rejects_non_stochastic(self):
        matrix = sp.csr_matrix(np.array([[0.5, 0.5], [0.1, 0.5]]))
        assert not is_column_stochastic(matrix)

    def test_zero_column_flag(self):
        matrix = sp.csr_matrix(np.array([[0.0, 1.0], [0.0, 0.0]]))
        assert not is_column_stochastic(matrix)
        assert is_column_stochastic(matrix, allow_zero_columns=True)


class TestStochasticOperator:
    def test_paper_convention_on_toy(self, toy):
        """S[i, j] = 1/k_j when j cites i; dangling columns = 1/N."""
        operator = StochasticOperator(toy)
        dense = operator.dense()
        n = toy.n_papers
        # Column sums are exactly one (S is column-stochastic).
        assert np.allclose(dense.sum(axis=0), 1.0)
        # A cites nothing -> its column is uniform.
        a = toy.index_of("A")
        assert np.allclose(dense[:, a], 1.0 / n)
        # F cites D, E, A -> those entries are 1/3.
        f = toy.index_of("F")
        for target in ("D", "E", "A"):
            assert dense[toy.index_of(target), f] == pytest.approx(1 / 3)

    def test_apply_matches_dense(self, toy):
        operator = StochasticOperator(toy)
        rng = np.random.default_rng(0)
        vector = rng.random(toy.n_papers)
        expected = operator.dense() @ vector
        assert np.allclose(operator.apply(vector), expected)

    def test_apply_preserves_probability_mass(self, toy):
        operator = StochasticOperator(toy)
        vector = np.full(toy.n_papers, 1.0 / toy.n_papers)
        result = operator.apply(vector)
        assert result.sum() == pytest.approx(1.0)

    def test_dangling_count(self, toy, two_dangling):
        assert StochasticOperator(toy).n_dangling == 1
        assert StochasticOperator(two_dangling).n_dangling == 2

    def test_all_dangling_gives_uniform(self, two_dangling):
        operator = StochasticOperator(two_dangling)
        vector = np.array([0.7, 0.3])
        assert np.allclose(operator.apply(vector), [0.5, 0.5])

    def test_wrong_vector_shape_rejected(self, toy):
        operator = StochasticOperator(toy)
        with pytest.raises(GraphError, match="shape"):
            operator.apply(np.ones(3))

    def test_edge_weights(self, chain):
        # Down-weight one edge: the column is still normalised to 1.
        weights = np.array([1.0, 0.5, 0.25])
        operator = StochasticOperator(chain, weights=weights)
        dense = operator.sparse_part.toarray()
        # Each citing paper has exactly one reference -> weight cancels.
        assert np.allclose(dense.sum(axis=0)[1:], 1.0)

    def test_weight_length_mismatch_rejected(self, chain):
        with pytest.raises(GraphError, match="one entry per citation"):
            StochasticOperator(chain, weights=np.ones(99))

    def test_negative_weights_rejected(self, chain):
        with pytest.raises(GraphError, match="non-negative"):
            StochasticOperator(chain, weights=-np.ones(chain.n_citations))

    def test_large_network_column_sums(self, hepth_tiny):
        operator = StochasticOperator(hepth_tiny)
        sums = np.asarray(operator.sparse_part.sum(axis=0)).ravel()
        non_dangling = ~operator.dangling_mask
        assert np.allclose(sums[non_dangling], 1.0)
        assert np.allclose(sums[operator.dangling_mask], 0.0)
