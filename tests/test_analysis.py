"""Unit tests for the analysis package (heatmaps, popularity, horizons,
convergence)."""

import numpy as np
import pytest

from repro.analysis.convergence import convergence_study, iterations_to_converge
from repro.analysis.heatmap import attention_heatmap
from repro.analysis.horizons import horizon_table
from repro.analysis.popularity import recently_popular_overlap
from repro.errors import EvaluationError
from repro.eval.metrics import NDCG, SpearmanRho


class TestHeatmap:
    @pytest.fixture(scope="class")
    def sweep(self, hepth_split):
        return attention_heatmap(
            hepth_split,
            SpearmanRho(),
            windows=(1, 2),
            alphas=(0.0, 0.2, 0.4),
            betas=(0.0, 0.3, 0.6, 1.0),
        )

    def test_grid_shape(self, sweep):
        assert sweep.values[1].shape == (4, 3)
        assert set(sweep.values) == {1, 2}

    def test_invalid_cells_are_nan(self, sweep):
        # alpha=0.4, beta=1.0 -> gamma=-0.4: outside the Table-3 space.
        grid = sweep.values[1]
        assert np.isnan(grid[3, 2])
        # alpha=0, beta=0 -> gamma=1.0 > 0.9: also excluded.
        assert np.isnan(grid[0, 0])

    def test_best_for_window_is_grid_max(self, sweep):
        alpha, beta, value = sweep.best_for_window(1)
        assert value == np.nanmax(sweep.values[1])
        assert alpha in sweep.alphas and beta in sweep.betas

    def test_best_overall_consistent(self, sweep):
        best = sweep.best_overall()
        per_window = [sweep.best_for_window(w)[2] for w in sweep.values]
        assert best["value"] == max(per_window)
        assert best["alpha"] + best["beta"] + best["gamma"] == pytest.approx(
            1.0
        )

    def test_no_att_maximum_is_beta_zero_row(self, sweep):
        value = sweep.no_att_maximum()
        rows = [grid[0, :] for grid in sweep.values.values()]
        assert value == np.nanmax(rows)

    def test_att_only_maximum(self, sweep):
        value = sweep.att_only_maximum()
        cells = [grid[3, 0] for grid in sweep.values.values()]
        assert value == np.nanmax(cells)

    def test_attention_beats_no_attention(self, sweep):
        """The paper's headline heatmap observation: the beta = 0 row is
        dominated by the best beta > 0 cell."""
        assert sweep.best_overall()["value"] > sweep.no_att_maximum()


class TestRecentlyPopular:
    def test_overlap_bounds(self, hepth_split):
        result = recently_popular_overlap(hepth_split, k=50)
        assert 0 <= result.overlap <= 50
        assert result.fraction == result.overlap / 50

    def test_substantial_overlap_on_synthetic_data(self, hepth_split):
        """Table 1: roughly half of the top STI papers were recently
        popular.  The synthetic corpora must reproduce a large overlap."""
        result = recently_popular_overlap(hepth_split, k=50, window_years=5)
        assert result.overlap >= 15  # at least 30%

    def test_lists_have_k_entries(self, hepth_split):
        result = recently_popular_overlap(hepth_split, k=25)
        assert len(result.top_sti) == 25
        assert len(result.top_recent) == 25

    def test_k_larger_than_network_rejected(self, hepth_split):
        with pytest.raises(EvaluationError):
            recently_popular_overlap(hepth_split, k=10**6)

    def test_bad_window_rejected(self, hepth_split):
        with pytest.raises(EvaluationError):
            recently_popular_overlap(hepth_split, window_years=0.0)

    def test_bad_k_rejected(self, hepth_split):
        with pytest.raises(EvaluationError):
            recently_popular_overlap(hepth_split, k=0)


class TestHorizons:
    def test_table_shape(self, hepth_tiny):
        rows = horizon_table(hepth_tiny)
        assert [r.test_ratio for r in rows] == [1.2, 1.4, 1.6, 1.8, 2.0]

    def test_horizons_increase_with_ratio(self, hepth_tiny):
        rows = horizon_table(hepth_tiny)
        horizons = [r.horizon_years for r in rows]
        assert horizons == sorted(horizons)
        assert all(h > 0 for h in horizons)

    def test_paper_counts_consistent(self, hepth_tiny):
        for row in horizon_table(hepth_tiny):
            assert row.n_future_papers >= row.n_current_papers
            assert row.n_future_papers <= hepth_tiny.n_papers


class TestConvergenceStudy:
    def test_report_structure(self, dblp_tiny):
        reports = convergence_study(dblp_tiny, alphas=(0.5,))
        report = reports[0.5]
        assert set(report.iterations) == {"AR", "CR", "FR"}
        assert report.tolerance == 1e-12

    def test_attrank_converges_fast(self, dblp_tiny):
        """Section 4.4: AttRank needs < 30 iterations at alpha = 0.5."""
        report = convergence_study(dblp_tiny, alphas=(0.5,))[0.5]
        assert report.converged["AR"]
        assert report.iterations["AR"] <= 40

    def test_iterations_decrease_with_alpha(self, dblp_tiny):
        reports = convergence_study(dblp_tiny, alphas=(0.1, 0.5))
        assert (
            reports[0.1].iterations["AR"] <= reports[0.5].iterations["AR"]
        )

    def test_fr_skipped_without_authors(self, chain):
        reports = convergence_study(chain, alphas=(0.5,))
        assert "FR" not in reports[0.5].iterations

    def test_iterations_to_converge_closed_form(self, hepth_tiny):
        from repro.core.variants import AttentionOnly

        count, converged = iterations_to_converge(
            AttentionOnly(attention_window=2), hepth_tiny
        )
        assert count == 1 and converged
