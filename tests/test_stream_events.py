"""Tests for the event-log layer (extraction, validation, JSONL)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DataFormatError, StreamError
from repro.stream import (
    CitationEvent,
    EventLog,
    PaperEvent,
    group_boundaries,
    network_from_log,
)


class TestConstruction:
    def test_orders_and_counts(self, toy):
        log = EventLog.from_network(toy)
        assert len(log) == toy.n_papers + toy.n_citations
        assert log.n_papers == toy.n_papers
        assert log.n_citations == toy.n_citations
        times = [event.time for event in log]
        assert times == sorted(times)

    def test_grouping_citations_follow_their_paper(self, toy):
        current = None
        for event in EventLog.from_network(toy):
            if isinstance(event, PaperEvent):
                current = event.paper_id
            else:
                assert event.citing == current

    def test_rejects_time_regression(self):
        with pytest.raises(StreamError, match="time-ordered"):
            EventLog(
                [
                    PaperEvent(time=2000.0, paper_id="a"),
                    PaperEvent(time=1999.0, paper_id="b"),
                ]
            )

    def test_rejects_duplicate_paper(self):
        with pytest.raises(StreamError, match="duplicate"):
            EventLog(
                [
                    PaperEvent(time=2000.0, paper_id="a"),
                    PaperEvent(time=2001.0, paper_id="a"),
                ]
            )

    def test_rejects_detached_citation(self):
        # The citation names "a" as citing, but "b" is the live group.
        with pytest.raises(StreamError, match="detached"):
            EventLog(
                [
                    PaperEvent(time=2000.0, paper_id="a"),
                    PaperEvent(time=2001.0, paper_id="b"),
                    CitationEvent(time=2001.0, citing="a", cited="b"),
                ]
            )

    def test_rejects_self_citation(self):
        with pytest.raises(StreamError, match="self-citation"):
            EventLog(
                [
                    PaperEvent(time=2000.0, paper_id="a"),
                    CitationEvent(time=2000.0, citing="a", cited="a"),
                ]
            )

    def test_rejects_leading_citation(self):
        with pytest.raises(StreamError, match="detached"):
            EventLog([CitationEvent(time=2000.0, citing="a", cited="b")])

    def test_from_network_rejects_forward_citations(self):
        from repro.graph.citation_network import CitationNetwork

        # "old" (1990) cites "new" (2000): not replayable as a stream.
        network = CitationNetwork(
            ["old", "new"], [1990.0, 2000.0], citing=[0], cited=[1]
        )
        with pytest.raises(StreamError, match="arrives later"):
            EventLog.from_network(network)

    def test_time_span_and_digest(self, toy):
        log = EventLog.from_network(toy)
        lo, hi = log.time_span()
        assert (lo, hi) == (1990.0, 2003.0)
        assert log.digest(0) != log.digest(len(log))
        assert log.digest() == log.digest(len(log))
        with pytest.raises(StreamError):
            log.digest(len(log) + 1)


class TestRoundTrips:
    def test_network_round_trip_is_exact(self, hepth_tiny):
        log = EventLog.from_network(hepth_tiny)
        rebuilt = network_from_log(log)
        assert rebuilt.paper_ids == hepth_tiny.paper_ids
        np.testing.assert_array_equal(
            rebuilt.publication_times, hepth_tiny.publication_times
        )
        assert rebuilt.n_citations == hepth_tiny.n_citations
        assert (
            rebuilt.citation_matrix != hepth_tiny.citation_matrix
        ).nnz == 0

    def test_jsonl_round_trip_is_exact(self, toy, tmp_path):
        log = EventLog.from_network(toy)
        path = str(tmp_path / "events.jsonl")
        log.save(path)
        loaded = EventLog.load(path)
        assert loaded == log
        assert loaded.digest() == log.digest()

    def test_jsonl_preserves_fractional_times(self, tmp_path):
        # repr-based float serialisation must round-trip exactly.
        time = 1997.1000000000001
        log = EventLog([PaperEvent(time=time, paper_id="x")])
        path = str(tmp_path / "events.jsonl")
        log.save(path)
        assert EventLog.load(path)[0].time == time

    def test_load_missing_file(self, tmp_path):
        with pytest.raises(DataFormatError, match="not found"):
            EventLog.load(str(tmp_path / "absent.jsonl"))

    def test_load_rejects_non_log(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text('{"hello": "world"}\n')
        with pytest.raises(DataFormatError, match="not a repro event log"):
            EventLog.load(str(path))

    def test_load_rejects_bad_version(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            '{"format": "repro-event-log", "log_format_version": 99}\n'
        )
        with pytest.raises(DataFormatError, match="version 99"):
            EventLog.load(str(path))

    def test_load_rejects_truncation(self, toy, tmp_path):
        log = EventLog.from_network(toy)
        path = tmp_path / "events.jsonl"
        log.save(str(path))
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-3]) + "\n")
        with pytest.raises(DataFormatError, match="truncated"):
            EventLog.load(str(path))

    def test_load_rejects_unknown_event_type(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"format": "repro-event-log", "log_format_version": 1}\n'
            '{"type": "retraction", "time": 2000.0, "id": "x"}\n'
        )
        with pytest.raises(DataFormatError, match="unknown event type"):
            EventLog.load(str(path))


class TestGroupBoundaries:
    def test_boundaries_are_paper_positions(self, toy):
        log = EventLog.from_network(toy)
        cuts = group_boundaries(log.events)
        assert cuts[-1] == len(log)
        for cut in cuts[:-1]:
            assert isinstance(log[cut], PaperEvent)
        assert 0 not in cuts

    def test_empty_log_errors(self):
        log = EventLog([])
        with pytest.raises(StreamError, match="empty"):
            log.time_span()
        with pytest.raises(StreamError, match="empty"):
            network_from_log(log)


class TestHeaderHardening:
    def test_load_rejects_non_numeric_version(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"format": "repro-event-log", "log_format_version": "one"}\n'
        )
        with pytest.raises(DataFormatError, match="malformed log_format"):
            EventLog.load(str(path))

    def test_load_rejects_non_numeric_event_count(self, tmp_path):
        path = tmp_path / "events.jsonl"
        path.write_text(
            '{"format": "repro-event-log", "log_format_version": 1, '
            '"n_events": []}\n'
        )
        with pytest.raises(DataFormatError, match="malformed n_events"):
            EventLog.load(str(path))
