"""Unit tests for repro.baselines.citerank."""

import numpy as np
import pytest

from repro.baselines.citerank import CiteRank
from repro.errors import ConfigurationError


class TestConfiguration:
    def test_alpha_range(self):
        with pytest.raises(ConfigurationError):
            CiteRank(alpha=0.0)
        with pytest.raises(ConfigurationError):
            CiteRank(alpha=1.0)

    def test_tau_positive(self):
        with pytest.raises(ConfigurationError):
            CiteRank(tau_dir=0.0)

    def test_params(self):
        params = CiteRank(alpha=0.31, tau_dir=1.6).params()
        assert params == {"alpha": 0.31, "tau_dir": 1.6}


class TestEntryDistribution:
    def test_probability_vector(self, toy):
        rho = CiteRank(alpha=0.5, tau_dir=2.0).entry_distribution(toy)
        assert rho.sum() == pytest.approx(1.0)
        assert np.all(rho > 0)

    def test_favours_recent_papers(self, toy):
        rho = CiteRank(alpha=0.5, tau_dir=2.0).entry_distribution(toy)
        assert rho[toy.index_of("H")] > rho[toy.index_of("A")]

    def test_tau_controls_decay(self, toy):
        sharp = CiteRank(alpha=0.5, tau_dir=0.5).entry_distribution(toy)
        flat = CiteRank(alpha=0.5, tau_dir=50.0).entry_distribution(toy)
        h = toy.index_of("H")
        assert sharp[h] > flat[h]
        # Huge tau approaches uniform.
        assert np.allclose(flat, 1.0 / toy.n_papers, atol=0.02)


class TestScores:
    def test_geometric_series_solution(self, chain):
        """On the 4-chain the traffic has a closed form:
        T = rho + alpha*W rho + ..., with W moving mass down the chain."""
        alpha, tau = 0.5, 2.0
        method = CiteRank(alpha=alpha, tau_dir=tau, tol=1e-14)
        rho = method.entry_distribution(chain)
        scores = method.scores(chain)
        a, b, c, d = (chain.index_of(x) for x in "ABCD")
        # D receives only its entry traffic.
        assert scores[d] == pytest.approx(rho[d])
        # C receives entry + alpha * T(D).
        assert scores[c] == pytest.approx(rho[c] + alpha * scores[d])
        assert scores[b] == pytest.approx(rho[b] + alpha * scores[c])
        assert scores[a] == pytest.approx(rho[a] + alpha * scores[b])

    def test_mass_leaks_at_dangling_papers(self, chain):
        """CiteRank does not recycle dangling mass: total traffic is
        bounded by 1/(1-alpha) but strictly below it on finite chains."""
        scores = CiteRank(alpha=0.5, tau_dir=2.0).scores(chain)
        assert scores.sum() < 1.0 / 0.5

    def test_promotes_recently_cited_papers(self, hepth_split):
        """CiteRank should beat plain PageRank on STI correlation (it is
        one of the paper's strong time-aware competitors)."""
        from repro.baselines.pagerank import PageRank
        from repro.eval.metrics import spearman_rho

        network, sti = hepth_split.current, hepth_split.sti
        cr = spearman_rho(
            CiteRank(alpha=0.5, tau_dir=2.0).scores(network), sti
        )
        pr = spearman_rho(PageRank(alpha=0.5).scores(network), sti)
        assert cr > pr

    def test_convergence_recorded(self, hepth_tiny):
        method = CiteRank(alpha=0.5, tau_dir=2.0)
        method.scores(hepth_tiny)
        assert method.last_convergence is not None
        assert method.last_convergence.converged
