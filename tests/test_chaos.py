"""Tests for the repro.chaos fault-injection plane.

Three tiers:

* Fast unit tests of the catalog, the trampoline, the injector, and
  plan determinism (plus the orphan-cleanup regression tests and the
  drain-under-load test, which use tiny toy-network workloads).
* ``chaos``-marked scenario tests: the crash-point sweep across every
  atomic-commit boundary and the updater-kill drain, each a full
  harness run.  Excluded from the default fast path; CI runs them in
  the dedicated chaos job next to ``repro chaos sweep``.
"""

from __future__ import annotations

import asyncio
import importlib
import inspect
import json
import os
import time

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos import (
    FAULT_POINTS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedDisconnect,
    chaos_point,
    fault_point,
)
from repro.cli import main
from repro.errors import ChaosError
from repro.serve import ScoreIndex
from repro.stream import EventLog, StreamIngestor
from repro.synth import toy_network

#: The atomic-commit boundaries of the checkpoint protocol, in path
#: order: index temp write / fsync / rename, then manifest write /
#: rename / post-commit prune.
COMMIT_BOUNDARIES = (
    "index.save.write",
    "index.save.fsync",
    "index.save.replace",
    "checkpoint.index_written",
    "checkpoint.manifest_tmp",
    "checkpoint.commit",
)


# ----------------------------------------------------------------------
# Catalog
# ----------------------------------------------------------------------
class TestCatalog:
    def test_names_are_unique(self):
        names = [point.name for point in FAULT_POINTS]
        assert len(names) == len(set(names))

    def test_every_point_has_a_scenario_and_kinds(self):
        for point in FAULT_POINTS:
            assert point.scenario in (
                "checkpoint", "gateway", "worker"
            ), point.name
            assert point.kinds, point.name
            assert point.max_invocation >= 0, point.name

    def test_unknown_point_is_a_typed_error(self):
        with pytest.raises(ChaosError, match="unknown fault point"):
            fault_point("no.such.point")

    @pytest.mark.parametrize(
        "point", FAULT_POINTS, ids=lambda p: p.name
    )
    def test_catalog_entry_is_threaded_into_its_module(self, point):
        """Every registered point exists as a real call site — the
        catalog and the code cannot drift apart silently."""
        module = importlib.import_module(point.module)
        source = inspect.getsource(module)
        assert f'chaos_point("{point.name}")' in source

    def test_commit_boundaries_are_registered(self):
        for name in COMMIT_BOUNDARIES:
            assert fault_point(name).scenario == "checkpoint"


# ----------------------------------------------------------------------
# Trampoline and injector
# ----------------------------------------------------------------------
class TestInjector:
    def test_disarmed_visit_is_a_noop(self):
        assert chaos_point("checkpoint.commit") is None

    def test_crash_fires_at_the_planned_invocation_only(self):
        plan = FaultPlan.single(
            "checkpoint.commit", kind="crash", invocation=2
        )
        with FaultInjector(plan) as injector:
            assert chaos_point("checkpoint.commit") is None
            assert chaos_point("checkpoint.commit") is None
            with pytest.raises(InjectedCrash) as caught:
                chaos_point("checkpoint.commit")
            assert chaos_point("checkpoint.commit") is None  # once only
        assert caught.value.point == "checkpoint.commit"
        assert caught.value.invocation == 2
        assert [
            (f.point, f.kind, f.invocation) for f in injector.fired
        ] == [("checkpoint.commit", "crash", 2)]
        assert injector.invocations["checkpoint.commit"] == 4

    def test_disarms_on_exit(self):
        plan = FaultPlan.single("checkpoint.commit", invocation=0)
        with FaultInjector(plan):
            pass
        assert chaos_point("checkpoint.commit") is None

    def test_nesting_is_refused(self):
        plan = FaultPlan.single("checkpoint.commit")
        with FaultInjector(plan):
            with pytest.raises(ChaosError, match="do not nest"):
                with FaultInjector(plan):
                    pass  # pragma: no cover - never reached

    def test_crash_is_not_an_exception(self):
        """The simulated kill must fly past ``except Exception``."""
        assert not issubclass(InjectedCrash, Exception)
        assert issubclass(InjectedDisconnect, ConnectionResetError)

    def test_disconnect_kind_raises_connection_reset(self):
        plan = FaultPlan.single(
            "gateway.request.read", kind="disconnect", invocation=0
        )
        with FaultInjector(plan):
            with pytest.raises(ConnectionResetError):
                chaos_point("gateway.request.read")

    def test_torn_kind_returns_the_spec_to_the_call_site(self):
        plan = FaultPlan.single(
            "gateway.response.write", kind="torn", invocation=1
        )
        with FaultInjector(plan):
            assert chaos_point("gateway.response.write") is None
            spec = chaos_point("gateway.response.write")
        assert isinstance(spec, FaultSpec)
        assert spec.kind == "torn"

    def test_delay_kind_sleeps_then_continues(self):
        plan = FaultPlan.single(
            "gateway.batch.execute",
            kind="delay",
            invocation=0,
            delay_seconds=0.05,
        )
        with FaultInjector(plan):
            started = time.monotonic()
            assert chaos_point("gateway.batch.execute") is None
            assert time.monotonic() - started >= 0.05


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_single_defaults_to_the_first_declared_kind(self):
        plan = FaultPlan.single("index.save.fsync")
        (spec,) = plan.specs
        assert spec.kind == "crash"

    def test_single_rejects_undeclared_kinds(self):
        with pytest.raises(ChaosError, match="does not support"):
            FaultPlan.single("index.save.fsync", kind="torn")

    def test_spec_rejects_negative_invocation(self):
        with pytest.raises(ChaosError, match="invocation"):
            FaultSpec(
                point="checkpoint.commit", kind="crash", invocation=-1
            )

    @given(st.integers(min_value=0, max_value=10_000))
    def test_seeded_plans_are_deterministic_and_bounded(self, seed):
        plan = FaultPlan.seeded(seed)
        assert plan == FaultPlan.seeded(seed)
        (spec,) = plan.specs
        declared = fault_point(spec.point)
        assert spec.kind in declared.kinds
        assert 0 <= spec.invocation <= declared.max_invocation
        assert FaultPlan.from_payload(plan.to_payload()) == plan

    @given(st.integers(min_value=0, max_value=10_000))
    def test_pinned_point_survives_the_seeded_draw(self, seed):
        plan = FaultPlan.seeded(seed, point="gateway.response.write")
        (spec,) = plan.specs
        assert spec.point == "gateway.response.write"

    def test_from_payload_rejects_foreign_documents(self):
        with pytest.raises(ChaosError, match="format marker"):
            FaultPlan.from_payload({"format": "something-else"})


# ----------------------------------------------------------------------
# Orphan cleanup (the satellite-1 regression fix)
# ----------------------------------------------------------------------
def _toy_ingestor(batches: int = 2) -> StreamIngestor:
    log = EventLog.from_network(toy_network())
    ingestor = StreamIngestor(
        log, ("CC",), batch_size=2, bootstrap_size=4
    )
    ingestor.replay(max_batches=batches)
    return ingestor


class TestOrphanCleanup:
    def test_index_save_sweeps_preexisting_orphans(self, tmp_path):
        path = str(tmp_path / "idx.npz")
        orphan = f"{path}.tmp-9999"
        open(orphan, "w").close()
        index = ScoreIndex(toy_network())
        index.add_method("CC")
        index.save(path)
        assert not os.path.exists(orphan)
        assert ScoreIndex.load(path).labels == ("CC",)

    def test_checkpoint_commit_sweeps_manifest_orphans(self, tmp_path):
        directory = str(tmp_path / "ckpt")
        os.makedirs(directory)
        orphan = os.path.join(directory, "checkpoint.json.tmp-9999")
        open(orphan, "w").close()
        _toy_ingestor().checkpoint(directory)
        assert not os.path.exists(orphan)
        leftovers = [
            name
            for name in os.listdir(directory)
            if ".tmp" in name
        ]
        assert leftovers == []

    def test_crash_orphans_are_swept_by_the_next_save(self, tmp_path):
        """An injected kill between fsync and rename leaves the temp
        file a real kill would; the next save must clean it up."""
        path = str(tmp_path / "idx.npz")
        index = ScoreIndex(toy_network())
        index.add_method("CC")
        plan = FaultPlan.single(
            "index.save.fsync", kind="crash", invocation=0
        )
        with FaultInjector(plan):
            with pytest.raises(InjectedCrash):
                index.save(path)
        orphans = [
            name
            for name in os.listdir(tmp_path)
            if ".tmp-" in name
        ]
        assert orphans, "the crash should have left its temp file"
        assert not os.path.exists(path)
        index.save(path)  # disarmed: commits and sweeps
        assert [
            name
            for name in os.listdir(tmp_path)
            if ".tmp-" in name
        ] == []
        assert ScoreIndex.load(path).labels == ("CC",)


# ----------------------------------------------------------------------
# Drain under load (satellite 3): a delayed coalesced batch holds a
# client's request in flight while stop() begins.
# ----------------------------------------------------------------------
class TestDrainUnderLoad:
    def test_inflight_completes_new_connections_refused_no_5xx(self):
        from repro.gateway import GatewayConfig, GatewayServer
        from repro.serve import RankingService

        index = ScoreIndex(toy_network())
        index.add_method("CC")
        service = RankingService(index)
        plan = FaultPlan.single(
            "gateway.batch.execute",
            kind="delay",
            invocation=0,
            delay_seconds=0.4,
        )

        async def drive():
            server = GatewayServer(service, config=GatewayConfig(port=0))
            await server.start()
            host, port = server.config.host, server.port
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(
                f"GET /v1/top?method=CC&k=3 HTTP/1.1\r\n"
                f"Host: {host}\r\nConnection: close\r\n\r\n".encode()
            )
            await writer.drain()
            # Let the request enter the delayed engine batch, then
            # start the graceful drain while it is still executing.
            await asyncio.sleep(0.1)
            stop_task = asyncio.ensure_future(server.stop())
            head = await reader.readuntil(b"\r\n\r\n")
            status = int(head.split(b" ")[1])
            length = int(
                [
                    line.split(b":")[1]
                    for line in head.split(b"\r\n")
                    if line.lower().startswith(b"content-length")
                ][0]
            )
            document = json.loads(await reader.readexactly(length))
            writer.close()
            await stop_task
            refused = False
            try:
                await asyncio.open_connection(host, port)
            except (ConnectionRefusedError, OSError):
                refused = True
            return status, document, refused, server.metrics

        with FaultInjector(plan) as injector:
            status, document, refused, metrics = asyncio.run(drive())

        assert [f.point for f in injector.fired] == [
            "gateway.batch.execute"
        ]
        assert status == 200  # the admitted request finished
        assert document["result"]["entries"]
        assert refused  # the listener is gone
        assert not any(
            code >= 500 for code in metrics.responses_by_status
        )


# ----------------------------------------------------------------------
# CLI
# ----------------------------------------------------------------------
class TestChaosCli:
    def test_plan_round_trips_through_json(self, capsys):
        assert main(["chaos", "plan", "--seed", "11"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert FaultPlan.from_payload(payload) == FaultPlan.seeded(11)

    def test_plan_pins_the_point(self, capsys):
        assert main(
            ["chaos", "plan", "--seed", "2", "--point", "index.load"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["specs"][0]["point"] == "index.load"

    def test_run_invocation_requires_kind(self, capsys):
        code = main(
            ["chaos", "run", "--point", "index.load",
             "--invocation", "1"]
        )
        assert code == 1
        assert "[ChaosError]" in capsys.readouterr().err

    def test_run_unknown_point_fails_typed(self, capsys):
        assert main(["chaos", "run", "--point", "nope"]) == 1
        assert "[ChaosError]" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Scenario runs (the chaos-marked CI subset)
# ----------------------------------------------------------------------
@pytest.mark.chaos
class TestCheckpointScenarios:
    @pytest.mark.parametrize("point", COMMIT_BOUNDARIES)
    def test_crash_at_every_commit_boundary(self, point, tmp_path):
        """Satellite 1: a kill at each atomic-commit boundary must
        leave a resumable, bit-identical, orphan-free checkpoint."""
        from repro.chaos.harness import run_checkpoint_scenario

        plan = FaultPlan.single(
            point, kind="crash", invocation=0, seed=0
        )
        report = run_checkpoint_scenario(
            plan, seed=0, workdir=str(tmp_path)
        )
        assert report.fired, point
        assert report.invariants == {
            "checkpoint_never_torn": True,
            "bit_identical_scores": True,
            "no_orphaned_tmp_files": True,
        }

    @settings(max_examples=3, deadline=None)
    @given(st.integers(min_value=0, max_value=40))
    def test_seeded_half_applied_update_recovers(self, seed):
        """The classic torn write — crash after the batch applied but
        before the offset advanced — across seeded invocations."""
        from repro.chaos.harness import run_checkpoint_scenario

        plan = FaultPlan.seeded(seed, point="stream.step.advance")
        report = run_checkpoint_scenario(plan, seed=seed)
        assert report.ok, report.to_payload()


@pytest.mark.chaos
class TestGatewayScenarios:
    def test_updater_killed_mid_batch_is_contained(self):
        """Satellite 3's hard half: the write path dies holding the
        coalescer lock; reads keep serving one untorn version and the
        drain still finishes cleanly."""
        from repro.chaos.harness import run_gateway_scenario

        plan = FaultPlan.single(
            "gateway.update.step", kind="crash", invocation=0, seed=5
        )
        report = run_gateway_scenario(plan, seed=5)
        assert report.ok, report.to_payload()
        assert report.invariants["updater_crash_contained"] is True
        assert report.invariants["no_5xx_emitted"] is True
        assert report.invariants["drained_port_refuses"] is True

    def test_torn_response_never_parses_as_complete(self):
        from repro.chaos.harness import run_gateway_scenario

        plan = FaultPlan.single(
            "gateway.response.write", kind="torn", invocation=3, seed=1
        )
        report = run_gateway_scenario(plan, seed=1)
        assert report.ok, report.to_payload()
        assert report.invariants["responses_parse_cleanly"] is True


@pytest.mark.chaos
class TestWorkerScenarios:
    def test_worker_killed_under_load_is_replaced(self):
        """A pre-forked worker dies mid-load (`os._exit`, no drain):
        the supervisor restarts it, clients lose no request, every
        answer stays bit-identical, and no shared-memory segment
        outlives the run."""
        from repro.chaos.harness import run_worker_scenario

        plan = FaultPlan.single(
            "gateway.worker", kind="crash", invocation=2, seed=0
        )
        report = run_worker_scenario(plan, seed=0)
        assert report.fired, report.to_payload()
        assert report.ok, report.to_payload()
        assert report.invariants == {
            "supervisor_restarted": True,
            "all_requests_answered": True,
            "responses_parse_cleanly": True,
            "responses_bit_identical": True,
            "no_shm_leak": True,
            "profiler_survives_restart": True,
        }


@pytest.mark.chaos
class TestChaosCliScenarios:
    def test_cli_run_reports_invariants(self, capsys):
        assert main(
            ["chaos", "run", "--point", "stream.step.apply",
             "--seed", "1"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["fired"] is True
        assert payload["ok"] is True
        assert payload["invariants"]["bit_identical_scores"] is True

    def test_cli_sweep_writes_a_gating_report(self, tmp_path, capsys):
        report_path = str(tmp_path / "chaos-report.json")
        assert main(
            ["chaos", "sweep", "--seeds", "1",
             "--points", "checkpoint.commit", "gateway.request.read",
             "--report", report_path]
        ) == 0
        summary = capsys.readouterr().out
        assert "result: ok" in summary
        document = json.loads(open(report_path).read())
        assert document["format"] == "repro-chaos-report"
        assert document["ok"] is True
        assert len(document["runs"]) == 2
