"""Packaging for the AttRank short-term-impact reproduction."""

import os

from setuptools import find_packages, setup


def _read_version() -> str:
    """Single-source the version from repro/__init__.py (no import)."""
    here = os.path.dirname(os.path.abspath(__file__))
    init = os.path.join(here, "src", "repro", "__init__.py")
    with open(init, "r", encoding="utf-8") as handle:
        for line in handle:
            if line.startswith("__version__"):
                return line.split("=", 1)[1].strip().strip("\"'")
    raise RuntimeError("__version__ not found in src/repro/__init__.py")


def _read_long_description() -> str:
    here = os.path.dirname(os.path.abspath(__file__))
    readme = os.path.join(here, "README.md")
    if not os.path.exists(readme):
        return ""
    with open(readme, "r", encoding="utf-8") as handle:
        return handle.read()


setup(
    name="repro-attrank",
    version=_read_version(),
    description=(
        "Reproduction of 'Ranking Papers by their Short-Term Scientific "
        "Impact' (Kanellos et al., ICDE 2021): AttRank, its baselines, "
        "the temporal evaluation, and an incremental ranking service"
    ),
    long_description=_read_long_description(),
    long_description_content_type="text/markdown",
    author="repro contributors",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=[
        "numpy>=1.22",
        "scipy>=1.8",
    ],
    extras_require={
        "test": ["pytest", "pytest-benchmark"],
        "interop": ["networkx"],
    },
    entry_points={
        "console_scripts": [
            "repro = repro.cli:main",
        ],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: Scientific/Engineering :: Information Analysis",
    ],
)
